open Symbolic

let widen_range ~param ~(prange : Subset.range) (r : Subset.range) =
  let has e = List.mem param (Expr.free_syms e) in
  if not (has r.lo || has r.hi || has r.step) then r
  else
    match (r.lo, r.hi, r.step, prange.step) with
    | Expr.Sym p, Expr.Sym p', Expr.Int 1, Expr.Int s when p = param && p' = param && s > 1 ->
        (* the index is the bare parameter over a strided increasing range:
           its image is exactly the map range, stride included. Collapsing
           the stride here (as the general case below must) would make a
           map whose step was widened to skip iterations summarize
           identically to the dense original — the one dataflow difference
           stride erasure cannot be allowed to hide. *)
        { Subset.lo = prange.lo; hi = prange.hi; step = prange.step }
    | Expr.Sym p, hi, Expr.Int s, Expr.Int ps
      when p = param && s > 1 && ps > 0 && ps mod s = 0
           && (match hi with
              | Expr.Min (Expr.Add (Expr.Sym q, Expr.Int k), h)
              | Expr.Min (h, Expr.Add (Expr.Sym q, Expr.Int k))
              | Expr.Min (Expr.Add (Expr.Int k, Expr.Sym q), h)
              | Expr.Min (h, Expr.Add (Expr.Int k, Expr.Sym q)) ->
                  q = param && k >= ps - 1 && h = prange.hi
                  && not (List.mem param (Expr.free_syms h))
              | _ -> false) ->
        (* a strided inner range of a tile map, [p : min(p + k, H) : s] over
           tiles p ∈ [lo : H : ps]: with the tile span covering a whole period
           (k ≥ ps − 1), the per-tile grids abut at matching residues
           (ps mod s = 0) and the capped last tile reaches H, so the union is
           exactly [lo : H : s] — the tiled image of a stride the mutation
           widened stays strided instead of collapsing to the dense box. *)
        { Subset.lo = prange.lo; hi = prange.hi; step = Expr.Int s }
    | _ -> begin
    (* Substitute both endpoints of the parameter's span and take the
       enclosing interval; handles decreasing ranges and negative
       coefficients conservatively. A parameter occurring in the stride
       cannot be widened stride-aware, so the stride collapses to 1 —
       a superset of every per-parameter instantiation. *)
    let at v e = Expr.simplify (Expr.subst (Expr.Env.singleton param v) e) in
    let lo1 = at prange.lo r.lo and lo2 = at prange.hi r.lo in
    let hi1 = at prange.lo r.hi and hi2 = at prange.hi r.hi in
    {
      Subset.lo = Expr.simplify (Expr.min_ lo1 lo2);
      hi = Expr.simplify (Expr.max_ hi1 hi2);
      step = Expr.one;
    }
  end

let through_map ~params ~ranges subset =
  if List.length params <> List.length ranges then
    invalid_arg
      (Printf.sprintf "Propagate.through_map: %d params vs %d ranges (malformed map scope)"
         (List.length params) (List.length ranges));
  List.fold_left2
    (fun acc param prange -> List.map (widen_range ~param ~prange) acc)
    subset params ranges

let memlet_through_map ~params ~ranges (m : Memlet.t) =
  { m with subset = through_map ~params ~ranges m.subset }

(* ---- full bottom-up propagation --------------------------------------- *)

type kind = Read | Write of Memlet.wcr option

type access = { container : string; subset : Subset.t; kind : kind; phase : int }

let scope_chain st n =
  let rec go n acc =
    match State.scope_of st n with None -> List.rev acc | Some e -> go e (e :: acc)
  in
  go n []

(* Widen a subset through a chain of map-entry scopes, innermost first. *)
let widen_chain st chain subset =
  List.fold_left
    (fun sub entry ->
      match State.node_opt st entry with
      | Some (Node.Map_entry info) -> through_map ~params:info.params ~ranges:info.ranges sub
      | _ -> sub)
    subset chain

let state_accesses g st =
  (* phase = topological position of the access's outermost enclosing scope
     entry (or of the leaf node itself at state top level): everything inside
     one parallel scope shares a phase, sequenced groups get distinct ones *)
  let topo_pos =
    let tbl = Hashtbl.create 32 in
    List.iteri (fun i n -> Hashtbl.replace tbl n i) (State.topological st);
    fun n -> match Hashtbl.find_opt tbl n with Some i -> i | None -> 0
  in
  let phase_of node chain =
    match List.rev chain with [] -> topo_pos node | outermost :: _ -> topo_pos outermost
  in
  List.concat_map
    (fun (e : State.edge) ->
      let acc node container subset kind =
        let chain = scope_chain st node in
        {
          container;
          subset = widen_chain st chain subset;
          kind;
          phase = phase_of node chain;
        }
      in
      let src = State.node_opt st e.src and dst = State.node_opt st e.dst in
      match (src, dst, e.memlet) with
      | _, Some (Node.Tasklet _ | Node.Library _), Some m -> [ acc e.dst m.data m.subset Read ]
      | Some (Node.Tasklet _ | Node.Library _), _, Some m ->
          [ acc e.src m.data m.subset (Write m.wcr) ]
      | Some (Node.Access _), Some (Node.Access d), Some m ->
          let w =
            match e.dst_memlet with
            | Some dm -> acc e.dst dm.data dm.subset (Write dm.wcr)
            | None -> (
                match Graph.container_opt g d with
                | Some desc -> acc e.dst d (Subset.full desc.shape) (Write None)
                | None -> acc e.dst d [] (Write None))
          in
          [ acc e.src m.data m.subset Read; w ]
      | _ -> [])
    (State.edges st)

type summary = {
  reads : (string * Subset.t) list;
  writes : (string * Subset.t) list;
  wcr_writes : string list;
  order : (string * [ `R | `W | `RW ]) list;
}

(* Union two propagated subsets of one container; a dimensionality clash
   (which validation forbids, but cutouts may transiently exhibit) widens to
   the container's full extent rather than failing. *)
let union_into g bounds container a b =
  match Subset.union ~bounds a b with
  | u -> u
  | exception Invalid_argument _ -> (
      match Graph.container_opt g container with
      | Some desc -> Subset.full desc.shape
      | None -> [])

let summarize ?(bounds = Expr.unbounded) g =
  let state_order =
    let bfs = Graph.states_bfs g in
    bfs @ List.filter (fun s -> not (List.mem s bfs)) (Graph.state_ids g)
  in
  (* collect every propagated access with a graph-global phase number *)
  let all = ref [] in
  let offset = ref 0 in
  List.iter
    (fun sid ->
      let st = Graph.state g sid in
      let accs = state_accesses g st in
      let maxp = List.fold_left (fun m a -> Stdlib.max m a.phase) (-1) accs in
      List.iter (fun a -> all := { a with phase = a.phase + !offset } :: !all) accs;
      (* interstate edges leaving this state may read scalar containers in
         their conditions and assignments: sequence those after the state *)
      let edge_phase = !offset + maxp + 1 in
      List.iter
        (fun (e : Graph.istate_edge) ->
          let syms =
            Cond.free_syms e.cond
            @ List.concat_map (fun (_, rhs) -> Expr.free_syms rhs) e.assigns
          in
          List.iter
            (fun s ->
              if Graph.has_container g s then
                all :=
                  { container = s; subset = Subset.scalar; kind = Read; phase = edge_phase }
                  :: !all)
            (List.sort_uniq compare syms))
        (Graph.out_istate_edges g sid);
      offset := edge_phase + 1)
    state_order;
  let all = List.rev !all in
  let containers =
    List.sort_uniq compare (List.map (fun a -> a.container) all)
  in
  let union_of sel =
    List.filter_map
      (fun c ->
        match List.filter (fun a -> a.container = c && sel a.kind) all with
        | [] -> None
        | first :: rest ->
            let u =
              List.fold_left
                (fun acc a -> union_into g bounds c acc a.subset)
                (Subset.normalize ~bounds first.subset)
                rest
            in
            Some (c, Subset.normalize ~bounds u))
      containers
  in
  (* a WCR write accumulates into its target, so it also reads it *)
  let reads =
    union_of (function Read | Write (Some _) -> true | Write None -> false)
  in
  let writes = union_of (function Write _ -> true | Read -> false) in
  let wcr_writes =
    List.sort_uniq compare
      (List.filter_map
         (fun a -> match a.kind with Write (Some _) -> Some a.container | _ -> None)
         all)
  in
  (* ordering signature: per phase, per container, one R/W/RW event; then
     collapse consecutive duplicates per container so splitting one phase
     into several with the same footprint is order-neutral *)
  let phases = List.sort_uniq compare (List.map (fun a -> a.phase) all) in
  let raw_events =
    List.concat_map
      (fun p ->
        let here = List.filter (fun a -> a.phase = p) all in
        List.filter_map
          (fun c ->
            let mine = List.filter (fun a -> a.container = c) here in
            if mine = [] then None
            else
              let r = List.exists (fun a -> a.kind = Read) mine in
              let w = List.exists (fun a -> match a.kind with Write _ -> true | _ -> false) mine in
              Some (c, if r && w then `RW else if w then `W else `R))
          (List.sort_uniq compare (List.map (fun a -> a.container) here)))
      phases
  in
  let order =
    List.rev
      (List.fold_left
         (fun acc (c, ev) ->
           match List.assoc_opt c acc with
           | Some prev when prev = ev -> acc
           | _ -> (c, ev) :: acc)
         [] raw_events)
  in
  { reads; writes; wcr_writes; order }

let free_syms_of_summary s =
  List.sort_uniq compare
    (List.concat_map
       (fun (_, sub) -> Subset.free_syms sub)
       (s.reads @ s.writes))
