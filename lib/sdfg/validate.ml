type error = { state : int option; what : string }

let pp_error fmt e =
  match e.state with
  | None -> Format.fprintf fmt "sdfg: %s" e.what
  | Some s -> Format.fprintf fmt "state %d: %s" s e.what

let err ?state what = { state; what }

let lib_connectors = function
  | Node.Mat_mul | Node.Batched_mat_mul -> ([ "A"; "B" ], [ "C" ])
  | Node.Reduce _ -> ([ "in" ], [ "out" ])

let check_state g sid (st : State.t) =
  let errors = ref [] in
  let add e = errors := e :: !errors in
  let nodes = State.nodes st in
  (* Edge endpoint and memlet checks *)
  List.iter
    (fun (e : State.edge) ->
      if not (State.has_node st e.src) then add (err ~state:sid (Printf.sprintf "edge %d: missing src node %d" e.e_id e.src));
      if not (State.has_node st e.dst) then add (err ~state:sid (Printf.sprintf "edge %d: missing dst node %d" e.e_id e.dst));
      let check_memlet = function
        | None -> ()
        | Some (m : Memlet.t) -> (
            match Graph.container_opt g m.data with
            | None ->
                add
                  (err ~state:sid
                     (Printf.sprintf "edge %d: memlet references undeclared container %s" e.e_id m.data))
            | Some desc ->
                let dims = List.length desc.shape in
                let sdims = Symbolic.Subset.num_dims m.subset in
                if dims <> sdims then
                  add
                    (err ~state:sid
                       (Printf.sprintf "edge %d: memlet on %s has %d dims, container has %d" e.e_id
                          m.data sdims dims)))
      in
      check_memlet e.memlet;
      check_memlet e.dst_memlet)
    (State.edges st);
  (* Node-local checks *)
  List.iter
    (fun (id, n) ->
      match n with
      | Node.Access d ->
          if not (Graph.has_container g d) then
            add (err ~state:sid (Printf.sprintf "access node %d references undeclared container %s" id d))
      | Node.Map_entry { params; ranges; _ } ->
          if List.length params <> List.length ranges then
            add (err ~state:sid (Printf.sprintf "map entry %d: %d params but %d ranges" id (List.length params) (List.length ranges)));
          (match State.exit_of st id with
          | _ -> ()
          | exception Not_found -> add (err ~state:sid (Printf.sprintf "map entry %d has no matching exit" id)))
      | Node.Map_exit { entry } -> (
          match State.node_opt st entry with
          | Some (Node.Map_entry _) -> ()
          | _ -> add (err ~state:sid (Printf.sprintf "map exit %d references bad entry %d" id entry)))
      | Node.Tasklet { code; label } ->
          let in_conns =
            List.filter_map (fun (e : State.edge) -> e.dst_conn) (State.in_edges st id)
          in
          let out_edges = State.out_edges st id in
          let outs = Tcode.outputs code in
          List.iter
            (fun (e : State.edge) ->
              match (e.src_conn, e.memlet) with
              | None, Some _ ->
                  add
                    (err ~state:sid
                       (Printf.sprintf "tasklet %s (%d): data edge without connector" label id))
              | None, None -> () (* pure dependency edge *)
              | Some c, _ ->
                  if not (List.mem c outs) then
                    add
                      (err ~state:sid
                         (Printf.sprintf "tasklet %s (%d): out connector %s not produced by code"
                            label id c)))
            out_edges;
          List.iter
            (fun c ->
              if not (List.mem c (Tcode.refs code)) then
                add (err ~state:sid (Printf.sprintf "tasklet %s (%d): in connector %s unused by code" label id c)))
            in_conns;
          (* unconnected assignments are internal temporaries; only require
             that the tasklet produces at least one connected output when it
             has any out edges at all *)
          ignore outs
      | Node.Library { kind; label } ->
          let ins, outs = lib_connectors kind in
          List.iter
            (fun c ->
              if
                not
                  (List.exists
                     (fun (e : State.edge) -> e.dst_conn = Some c && e.memlet <> None)
                     (State.in_edges st id))
              then add (err ~state:sid (Printf.sprintf "library %s (%d): missing input %s" label id c)))
            ins;
          List.iter
            (fun c ->
              if
                not
                  (List.exists
                     (fun (e : State.edge) -> e.src_conn = Some c && e.memlet <> None)
                     (State.out_edges st id))
              then add (err ~state:sid (Printf.sprintf "library %s (%d): missing output %s" label id c)))
            outs)
    nodes;
  (* GPU storage discipline: memlets attached to tasklets inside GPU-scheduled
     scopes must reference device-resident containers. *)
  let gpu_entries =
    List.filter_map
      (fun (id, n) ->
        match n with
        | Node.Map_entry { schedule = Node.Gpu_device; _ } -> Some id
        | _ -> None)
      nodes
  in
  List.iter
    (fun entry ->
      let inside = State.scope_nodes st entry in
      List.iter
        (fun nid ->
          match State.node_opt st nid with
          | Some (Node.Tasklet _ | Node.Library _) ->
              List.iter
                (fun (e : State.edge) ->
                  match e.memlet with
                  | Some m -> (
                      match Graph.container_opt g m.data with
                      | Some d when d.storage = Graph.Host ->
                          add
                            (err ~state:sid
                               (Printf.sprintf
                                  "GPU-scheduled scope %d accesses host container %s" entry m.data))
                      | _ -> ())
                  | None -> ())
                (State.in_edges st nid @ State.out_edges st nid)
          | _ -> ())
        inside)
    gpu_entries;
  (* Acyclicity *)
  (match State.topological st with
  | (_ : int list) -> ()
  | exception Failure _ -> add (err ~state:sid "dataflow graph has a cycle"));
  !errors

(* Graph-wide errors ([state = None]) sort before per-state ones; within a
   state, errors order by message text. The polymorphic compare on the record
   gives exactly that (None < Some, then string compare on [what]). *)
let compare_error (a : error) (b : error) = compare a b

let check g =
  let errors = ref [] in
  if Graph.state_ids g <> [] && Graph.state_opt g (Graph.start_state g) = None then
    errors := [ err "missing start state" ];
  List.iter
    (fun (e : Graph.istate_edge) ->
      if Graph.state_opt g e.src = None || Graph.state_opt g e.dst = None then
        errors := err (Printf.sprintf "interstate edge %d references missing state" e.ie_id) :: !errors)
    (Graph.istate_edges g);
  List.iter (fun (sid, st) -> errors := check_state g sid st @ !errors) (Graph.states g);
  List.sort_uniq compare_error !errors

let check_exn g =
  match check g with
  | [] -> ()
  | e :: _ -> failwith (Format.asprintf "invalid SDFG %s: %a" (Graph.name g) pp_error e)
