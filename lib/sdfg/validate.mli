(** Structural validation of SDFGs.

    A transformation that produces a graph failing validation corresponds to
    the "generates invalid code" failure class of Table 2 in the paper. *)

type error = { state : int option; what : string }

val pp_error : Format.formatter -> error -> unit

(** Total order on errors: graph-wide errors ([state = None]) first, then by
    state id, then by message. *)
val compare_error : error -> error -> int

(** All structural problems found, sorted by {!compare_error} and deduplicated;
    the empty list means the graph is valid. Checks: container references,
    subset dimensionality, map entry/exit pairing, tasklet/library connector
    wiring, GPU-schedule storage discipline, interstate edge endpoints,
    dataflow acyclicity. Callers (notably generator admission) rely on getting
    the complete list so rejections can be attributed, not just the first
    failure. *)
val check : Graph.t -> error list

(** [check_exn g] raises [Failure] with a readable message on the first
    problem. *)
val check_exn : Graph.t -> unit
