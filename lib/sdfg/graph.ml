type storage = Host | Gpu

type datadesc = {
  shape : Symbolic.Expr.t list;
  dtype : Dtype.t;
  transient : bool;
  storage : storage;
}

type istate_edge = {
  ie_id : int;
  src : int;
  dst : int;
  cond : Symbolic.Cond.t;
  assigns : (string * Symbolic.Expr.t) list;
}

module SMap = Map.Make (String)

type t = {
  nm : string;
  mutable conts : datadesc SMap.t;
  mutable syms : string list;
  states_tbl : (int, State.t) Hashtbl.t;
  iedges : (int, istate_edge) Hashtbl.t;
  mutable start : int;
  mutable next_state : int;
  mutable next_iedge : int;
}

let create nm =
  {
    nm;
    conts = SMap.empty;
    syms = [];
    states_tbl = Hashtbl.create 8;
    iedges = Hashtbl.create 8;
    start = -1;
    next_state = 0;
    next_iedge = 0;
  }

let name t = t.nm

let copy t =
  let states_tbl = Hashtbl.create (Hashtbl.length t.states_tbl) in
  Hashtbl.iter (fun id st -> Hashtbl.replace states_tbl id (State.copy st)) t.states_tbl;
  {
    nm = t.nm;
    conts = t.conts;
    syms = t.syms;
    states_tbl;
    iedges = Hashtbl.copy t.iedges;
    start = t.start;
    next_state = t.next_state;
    next_iedge = t.next_iedge;
  }

let add_container t nm desc = t.conts <- SMap.add nm desc t.conts

let add_array t ?(transient = false) ?(storage = Host) nm dtype shape =
  add_container t nm { shape; dtype; transient; storage }

let add_scalar t ?(transient = false) ?(storage = Host) nm dtype =
  add_container t nm { shape = []; dtype; transient; storage }

let remove_container t nm = t.conts <- SMap.remove nm t.conts
let container t nm = SMap.find nm t.conts
let container_opt t nm = SMap.find_opt nm t.conts
let has_container t nm = SMap.mem nm t.conts
let containers t = SMap.bindings t.conts

let set_transient t nm b =
  t.conts <- SMap.update nm (Option.map (fun d -> { d with transient = b })) t.conts

let set_storage t nm s =
  t.conts <- SMap.update nm (Option.map (fun d -> { d with storage = s })) t.conts

let add_symbol t s = if not (List.mem s t.syms) then t.syms <- List.sort compare (s :: t.syms)
let symbols t = t.syms

let add_state t lbl =
  let id = t.next_state in
  t.next_state <- id + 1;
  Hashtbl.replace t.states_tbl id (State.create lbl);
  if t.start < 0 then t.start <- id;
  id

let add_state_with_id t id st =
  if Hashtbl.mem t.states_tbl id then invalid_arg "Graph.add_state_with_id: id taken";
  Hashtbl.replace t.states_tbl id st;
  if t.start < 0 then t.start <- id;
  if id >= t.next_state then t.next_state <- id + 1

let state t id = Hashtbl.find t.states_tbl id
let state_opt t id = Hashtbl.find_opt t.states_tbl id

let states t =
  Hashtbl.fold (fun id st acc -> (id, st) :: acc) t.states_tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let state_ids t = List.map fst (states t)

let remove_state t id =
  Hashtbl.remove t.states_tbl id;
  let doomed =
    Hashtbl.fold (fun ie e acc -> if e.src = id || e.dst = id then ie :: acc else acc) t.iedges []
  in
  List.iter (Hashtbl.remove t.iedges) doomed

let set_start_state t id = t.start <- id
let start_state t = t.start

let add_istate_edge t ?(cond = Symbolic.Cond.True) ?(assigns = []) src dst =
  if not (Hashtbl.mem t.states_tbl src) then invalid_arg "Graph.add_istate_edge: bad src";
  if not (Hashtbl.mem t.states_tbl dst) then invalid_arg "Graph.add_istate_edge: bad dst";
  let ie_id = t.next_iedge in
  t.next_iedge <- ie_id + 1;
  Hashtbl.replace t.iedges ie_id { ie_id; src; dst; cond; assigns };
  ie_id

let add_state_after t src lbl =
  let id = add_state t lbl in
  ignore (add_istate_edge t src id);
  id

let istate_edges t =
  Hashtbl.fold (fun _ e acc -> e :: acc) t.iedges []
  |> List.sort (fun a b -> compare a.ie_id b.ie_id)

let istate_edge t ie = Hashtbl.find t.iedges ie
let remove_istate_edge t ie = Hashtbl.remove t.iedges ie
let out_istate_edges t id = List.filter (fun e -> e.src = id) (istate_edges t)
let in_istate_edges t id = List.filter (fun e -> e.dst = id) (istate_edges t)

let bfs_from next start_set =
  let seen = Hashtbl.create 16 in
  let queue = Queue.create () in
  List.iter
    (fun s ->
      if not (Hashtbl.mem seen s) then begin
        Hashtbl.replace seen s ();
        Queue.add s queue
      end)
    start_set;
  let order = ref [] in
  while not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    order := s :: !order;
    List.iter
      (fun d ->
        if not (Hashtbl.mem seen d) then begin
          Hashtbl.replace seen d ();
          Queue.add d queue
        end)
      (next s)
  done;
  List.rev !order

let states_bfs t =
  if t.start < 0 then []
  else bfs_from (fun s -> List.map (fun e -> e.dst) (out_istate_edges t s)) [ t.start ]

let reachable_states t src =
  bfs_from
    (fun s -> List.map (fun e -> e.dst) (out_istate_edges t s))
    (List.map (fun e -> e.dst) (out_istate_edges t src))

let coreachable_states t dst =
  bfs_from
    (fun s -> List.map (fun e -> e.src) (in_istate_edges t s))
    (List.map (fun e -> e.src) (in_istate_edges t dst))

let external_containers t =
  containers t |> List.filter (fun (_, d) -> not d.transient) |> List.map fst

module Sset = Set.Make (String)

(* Free symbols: every symbol used anywhere — including [Tcode.Ref]s in
   tasklet code that are not fed by an input connector — minus the bound
   ones (map parameters and interstate-assignment targets), plus explicitly
   declared symbols. Container names are also excluded: conditions may read
   scalar containers. Code refs matter for extracted cutouts: a tasklet may
   reference a loop variable whose interstate assignment was cut away, and
   that symbol must surface here so the fuzzer samples it as an input. *)
let all_free_syms t =
  let used = ref Sset.empty in
  let bound = ref Sset.empty in
  let add_used l = used := List.fold_left (fun s x -> Sset.add x s) !used l in
  SMap.iter (fun _ d -> List.iter (fun e -> add_used (Symbolic.Expr.free_syms e)) d.shape) t.conts;
  Hashtbl.iter
    (fun _ st ->
      List.iter
        (fun (e : State.edge) ->
          match e.memlet with
          | None -> ()
          | Some m -> add_used (Symbolic.Subset.free_syms m.subset))
        (State.edges st);
      List.iter
        (fun (nid, n) ->
          match n with
          | Node.Map_entry { params; ranges; _ } ->
              bound := List.fold_left (fun s p -> Sset.add p s) !bound params;
              List.iter
                (fun (r : Symbolic.Subset.range) ->
                  add_used
                    (Symbolic.Expr.free_syms r.lo
                    @ Symbolic.Expr.free_syms r.hi
                    @ Symbolic.Expr.free_syms r.step))
                ranges
          | Node.Tasklet { code; _ } ->
              let in_conns =
                List.filter_map
                  (fun (e : State.edge) -> e.dst_conn)
                  (State.in_edges st nid)
              in
              add_used (List.filter (fun r -> not (List.mem r in_conns)) (Tcode.refs code))
          | _ -> ())
        (State.nodes st))
    t.states_tbl;
  Hashtbl.iter
    (fun _ (e : istate_edge) ->
      add_used (Symbolic.Cond.free_syms e.cond);
      List.iter
        (fun (tgt, rhs) ->
          bound := Sset.add tgt !bound;
          add_used (Symbolic.Expr.free_syms rhs))
        e.assigns)
    t.iedges;
  let conts = SMap.fold (fun k _ acc -> Sset.add k acc) t.conts Sset.empty in
  Sset.elements
    (Sset.union (Sset.of_list t.syms) (Sset.diff !used (Sset.union !bound conts)))
