type edge = {
  e_id : int;
  src : int;
  src_conn : string option;
  dst : int;
  dst_conn : string option;
  memlet : Memlet.t option;
  dst_memlet : Memlet.t option;
}

type t = {
  mutable lbl : string;
  nodes : (int, Node.t) Hashtbl.t;
  edges_tbl : (int, edge) Hashtbl.t;
  mutable next_node : int;
  mutable next_edge : int;
}

let create lbl = { lbl; nodes = Hashtbl.create 16; edges_tbl = Hashtbl.create 16; next_node = 0; next_edge = 0 }
let label t = t.lbl
let set_label t l = t.lbl <- l

let copy t =
  {
    lbl = t.lbl;
    nodes = Hashtbl.copy t.nodes;
    edges_tbl = Hashtbl.copy t.edges_tbl;
    next_node = t.next_node;
    next_edge = t.next_edge;
  }

let add_node t n =
  let id = t.next_node in
  t.next_node <- id + 1;
  Hashtbl.replace t.nodes id n;
  id

let add_node_with_id t id n =
  if Hashtbl.mem t.nodes id then invalid_arg "State.add_node_with_id: id taken";
  Hashtbl.replace t.nodes id n;
  if id >= t.next_node then t.next_node <- id + 1

let replace_node t id n =
  if not (Hashtbl.mem t.nodes id) then invalid_arg "State.replace_node: no such node";
  Hashtbl.replace t.nodes id n

let add_edge t ?src_conn ?dst_conn ?memlet ?dst_memlet src dst =
  if not (Hashtbl.mem t.nodes src) then invalid_arg "State.add_edge: bad src";
  if not (Hashtbl.mem t.nodes dst) then invalid_arg "State.add_edge: bad dst";
  let e_id = t.next_edge in
  t.next_edge <- e_id + 1;
  Hashtbl.replace t.edges_tbl e_id { e_id; src; src_conn; dst; dst_conn; memlet; dst_memlet };
  e_id

let remove_edge t e_id = Hashtbl.remove t.edges_tbl e_id

let remove_node t id =
  Hashtbl.remove t.nodes id;
  let doomed =
    Hashtbl.fold (fun e_id e acc -> if e.src = id || e.dst = id then e_id :: acc else acc) t.edges_tbl []
  in
  List.iter (Hashtbl.remove t.edges_tbl) doomed

let set_edge_memlet t e_id m =
  match Hashtbl.find_opt t.edges_tbl e_id with
  | None -> invalid_arg "State.set_edge_memlet: no such edge"
  | Some e -> Hashtbl.replace t.edges_tbl e_id { e with memlet = m }

let node t id = Hashtbl.find t.nodes id
let node_opt t id = Hashtbl.find_opt t.nodes id
let has_node t id = Hashtbl.mem t.nodes id

let nodes t =
  Hashtbl.fold (fun id n acc -> (id, n) :: acc) t.nodes []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let node_ids t = List.map fst (nodes t)

let edges t =
  Hashtbl.fold (fun _ e acc -> e :: acc) t.edges_tbl []
  |> List.sort (fun a b -> compare a.e_id b.e_id)

let edge t e_id = Hashtbl.find t.edges_tbl e_id
let in_edges t id = List.filter (fun e -> e.dst = id) (edges t)
let out_edges t id = List.filter (fun e -> e.src = id) (edges t)

let dedup_sorted l = List.sort_uniq compare l
let predecessors t id = dedup_sorted (List.map (fun e -> e.src) (in_edges t id))
let successors t id = dedup_sorted (List.map (fun e -> e.dst) (out_edges t id))
let num_nodes t = Hashtbl.length t.nodes
let num_edges t = Hashtbl.length t.edges_tbl
let source_nodes t = List.filter (fun id -> in_edges t id = []) (node_ids t)
let sink_nodes t = List.filter (fun id -> out_edges t id = []) (node_ids t)

let topological t =
  let indeg = Hashtbl.create 16 in
  List.iter (fun id -> Hashtbl.replace indeg id 0) (node_ids t);
  List.iter
    (fun e -> Hashtbl.replace indeg e.dst (Hashtbl.find indeg e.dst + 1))
    (edges t);
  let ready =
    List.filter (fun id -> Hashtbl.find indeg id = 0) (node_ids t)
  in
  let queue = Queue.create () in
  List.iter (fun id -> Queue.add id queue) ready;
  let order = ref [] in
  let count = ref 0 in
  while not (Queue.is_empty queue) do
    let id = Queue.pop queue in
    order := id :: !order;
    incr count;
    List.iter
      (fun s ->
        let d = Hashtbl.find indeg s - 1 in
        Hashtbl.replace indeg s d;
        if d = 0 then Queue.add s queue)
      (* count multiplicity: each edge decrements once *)
      (List.map (fun e -> e.dst) (out_edges t id))
  done;
  if !count <> num_nodes t then failwith ("State.topological: cycle in state " ^ t.lbl);
  List.rev !order

let exit_of t entry =
  let found =
    Hashtbl.fold
      (fun id n acc ->
        match n with Node.Map_exit { entry = e } when e = entry -> Some id | _ -> acc)
      t.nodes None
  in
  match found with Some id -> id | None -> raise Not_found

(* Nodes strictly between a map entry and its exit: forward reachability from
   the entry, stopping at the exit. Builder discipline guarantees all paths
   from the entry reach the exit. *)
let scope_nodes t entry =
  let ex = exit_of t entry in
  let seen = Hashtbl.create 16 in
  let rec go id =
    if id <> ex && not (Hashtbl.mem seen id) then begin
      Hashtbl.replace seen id ();
      List.iter go (successors t id)
    end
  in
  List.iter go (successors t entry);
  Hashtbl.fold (fun id () acc -> id :: acc) seen []
  |> List.filter (fun id -> id <> entry)
  |> List.sort compare

let scope_of t n =
  (* innermost enclosing entry: the entry e with n in scope_nodes e and no
     other enclosing entry also inside e's scope *)
  let entries =
    List.filter_map (fun (id, nd) -> if Node.is_map_entry nd then Some id else None) (nodes t)
  in
  (* entry/exit nodes belong to the parent scope: scope_nodes of an outer
     entry contains nested entries/exits, giving them their parent here *)
  let enclosing = List.filter (fun e -> List.mem n (scope_nodes t e)) entries in
  (* the innermost one is enclosed by all the others *)
  match enclosing with
  | [] -> None
  | [ e ] -> Some e
  | es ->
      let innermost =
        List.find
          (fun e ->
            List.for_all (fun e' -> e = e' || List.mem e (scope_nodes t e')) es)
          es
      in
      Some innermost

(* Closure of a node set over routing nodes (map entries/exits): any node
   adjacent to a routing node already in the set joins it. Cutout extraction
   keeps whole scopes, so the closure of a change set is exactly the node set
   a cutout built from that change set covers. Seeds absent from the state
   (e.g. nodes a transformation removed) contribute nothing but stay in the
   result. *)
let scope_closure t seeds =
  let routing n =
    match node_opt t n with
    | Some (Node.Map_entry _) | Some (Node.Map_exit _) -> true
    | _ -> false
  in
  let in_set set n = List.mem n set in
  let rec grow set frontier =
    let next =
      List.concat_map
        (fun n ->
          if not (routing n) then []
          else
            List.filter_map
              (fun e ->
                if e.src = n && not (in_set set e.dst) then Some e.dst
                else if e.dst = n && not (in_set set e.src) then Some e.src
                else None)
              (edges t))
        frontier
      |> List.sort_uniq compare
    in
    match next with [] -> set | _ -> grow (next @ set) next
  in
  grow seeds seeds

let access_nodes t name =
  List.filter_map
    (fun (id, n) -> match n with Node.Access d when d = name -> Some id | _ -> None)
    (nodes t)

let referenced_containers t =
  edges t
  |> List.filter_map (fun e -> Option.map (fun (m : Memlet.t) -> m.data) e.memlet)
  |> List.sort_uniq compare
