(** A state: one dataflow multigraph of the SDFG.

    States hold nodes and directed multi-edges between them. Edges optionally
    carry a {!Memlet.t} (data movement) and connector names that attach them
    to tasklet inputs/outputs or route them through map entry/exit nodes. *)

type edge = {
  e_id : int;
  src : int;
  src_conn : string option;
  dst : int;
  dst_conn : string option;
  memlet : Memlet.t option;
  dst_memlet : Memlet.t option;
      (** for access-to-access copy edges: the destination subset, when it
          differs from [memlet] (e.g. host↔GPU copies of a sub-region) *)
}

type t

val create : string -> t
val label : t -> string
val set_label : t -> string -> unit
val copy : t -> t

(** {1 Construction} *)

val add_node : t -> Node.t -> int
(** Returns the fresh node id. *)

val add_node_with_id : t -> int -> Node.t -> unit
(** Insert a node under a caller-chosen id (used by cutout extraction to keep
    original ids). Raises [Invalid_argument] if the id is taken. *)

val replace_node : t -> int -> Node.t -> unit
(** Swap the payload of an existing node, keeping its edges. *)

val add_edge :
  t ->
  ?src_conn:string ->
  ?dst_conn:string ->
  ?memlet:Memlet.t ->
  ?dst_memlet:Memlet.t ->
  int ->
  int ->
  int
(** [add_edge st src dst] connects two existing nodes; returns the edge id. *)

val remove_node : t -> int -> unit
(** Removes a node and all incident edges. *)

val remove_edge : t -> int -> unit
val set_edge_memlet : t -> int -> Memlet.t option -> unit

(** {1 Inspection} *)

val node : t -> int -> Node.t
val node_opt : t -> int -> Node.t option
val has_node : t -> int -> bool
val nodes : t -> (int * Node.t) list
(** Sorted by node id for determinism. *)

val node_ids : t -> int list
val edges : t -> edge list
(** Sorted by edge id. *)

val edge : t -> int -> edge
val in_edges : t -> int -> edge list
val out_edges : t -> int -> edge list
val predecessors : t -> int -> int list
val successors : t -> int -> int list
val num_nodes : t -> int
val num_edges : t -> int

(** Source nodes: nodes without incoming edges. *)
val source_nodes : t -> int list

val sink_nodes : t -> int list

(** Topological order of all node ids.
    @raise Failure if the dataflow graph has a cycle. *)
val topological : t -> int list

(** {1 Scopes} *)

(** [exit_of st entry] is the id of the {!Node.Map_exit} matching [entry].
    @raise Not_found if there is none. *)
val exit_of : t -> int -> int

(** Node ids strictly inside the scope of a map entry (excluding the entry and
    exit nodes themselves, including nested entries/exits). *)
val scope_nodes : t -> int -> int list

(** [scope_of st n] is the innermost map entry enclosing [n], if any. Entry
    and exit nodes belong to their *parent* scope. *)
val scope_of : t -> int -> int option

(** Closure of [seeds] over routing nodes (map entries/exits): any node
    adjacent to an in-set routing node joins the set, transitively. This is
    the node set a cutout extracted from [seeds] covers — extraction keeps
    whole scopes. Seeds absent from the state are tolerated (they contribute
    no neighbours but remain in the result). *)
val scope_closure : t -> int list -> int list

(** All access nodes referring to container [name]. *)
val access_nodes : t -> string -> int list

(** All containers read or written anywhere in this state, via edge memlets. *)
val referenced_containers : t -> string list
