open Fuzzyflow

(* What one probe (forked child) reports back. Kept free of closures and
   graphs so it marshals cheaply through the worker temp-file protocol. *)
type probe_result =
  | R_verdict of {
      klass : Difftest.failure_class option;  (** [None]: the oracle saw nothing *)
      first_trial : int;
      failing_trials : int;
      localized : bool option;
      audit_flagged : bool option;
          (** change-set audit verdict on the (mutated) transform; [None]
              when the audit does not apply to this probe shape *)
      dep_witness : (string * int) list option;
          (** concrete valuation from the exact dependence tier (a refutation
              model or a race finding's [dep_witness]); [None] when the tier
              produced no witness or does not apply *)
      dep_confirmed : bool option;
          (** did the witness, replayed as a one-trial directed fuzz seed,
              reproduce the failure dynamically? *)
      detail : string;
    }
  | R_mpi of {
      fault : string option;
      data_ok : bool;
      healed : int;
      retransmits : int;
      backoff : int;
    }
  | R_net of {
      identical : bool;
          (** chaos journal's instance lines byte-identical to the same-seed
              serial reference *)
      degraded : bool;  (** campaign fell back to the local pool *)
      evidence : string list;
          (** sorted distinct failure-class names the supervisor observed —
              qualitative only, so reruns stay byte-identical *)
    }

type outcome =
  | Detected of { got : string; first_trial : int }
  | Missed of { detail : string }
  | Misclassified of { expected : string; got : string }
  | Quarantined of { detail : string }

let outcome_name = function
  | Detected _ -> "detected"
  | Missed _ -> "missed"
  | Misclassified _ -> "misclassified"
  | Quarantined _ -> "quarantined"

type row = {
  spec : Plan.spec;
  outcome : outcome;
  attempts : int;
  localized : bool option;
  audit : bool option;  (** change-set audit verdict, [None] when not applicable *)
  dep : bool option;
      (** exact dependence channel: [Some true] — a witness was found and its
          directed replay reproduced the failure; [Some false] — a witness was
          found but did not reproduce; [None] — no witness / not applicable *)
}

type report = { seed : int; trials : int; rows : row list }

(* ---- probes (run inside forked workers) --------------------------------- *)

let verdict_result ?(localized = None) ?(audit_flagged = None) ?(dep_witness = None)
    ?(dep_confirmed = None) (r : Difftest.report) =
  match r.Difftest.verdict with
  | Difftest.Pass ->
      R_verdict
        {
          klass = None;
          first_trial = 0;
          failing_trials = 0;
          localized;
          audit_flagged;
          dep_witness;
          dep_confirmed;
          detail = "all trials agree";
        }
  | Difftest.Fail f ->
      R_verdict
        {
          klass = Some f.Difftest.klass;
          first_trial = f.Difftest.first_trial;
          failing_trials = f.Difftest.failing_trials;
          localized;
          audit_flagged;
          dep_witness;
          dep_confirmed;
          detail = Format.asprintf "%a" Difftest.pp_failure f.Difftest.kind;
        }

(* Min-cut capacities and overlap checks need concrete symbol values; bind
   every program parameter to a small extent, like the CLI's -D N=8. *)
let concretize_all g = List.map (fun s -> (s, 8)) (Sdfg.Graph.all_free_syms g)

let interp_probe ~trials ~spec_seed ~workload ~inject =
  let g = Plan.workload_by_name workload in
  let x = Mutate.identity () in
  match x.Transforms.Xform.find g with
  | [] ->
      R_verdict
        {
          klass = None;
          first_trial = 0;
          failing_trials = 0;
          localized = None;
          audit_flagged = None;
          dep_witness = None;
          dep_confirmed = None;
          detail = "no site";
        }
  | site :: _ ->
      let config =
        {
          Difftest.default_config with
          trials;
          seed = spec_seed;
          concretization = concretize_all g;
          inject_transformed = Some inject;
        }
      in
      verdict_result (Difftest.test_instance ~config g x site)

let transform_probe ~trials ~spec_seed ~workload ~xform ~kind ~mutation_seed ~site
    ~expected_containers =
  let g = Plan.workload_by_name workload in
  match Transforms.Registry.by_name (Transforms.Registry.all_correct ()) xform with
  | None ->
      R_verdict
        {
          klass = None;
          first_trial = 0;
          failing_trials = 0;
          localized = None;
          audit_flagged = None;
          dep_witness = None;
          dep_confirmed = None;
          detail = "no such transform";
        }
  | Some base ->
      let mutated = Mutate.seed_bug ~seed:mutation_seed kind base in
      let config =
        {
          Difftest.default_config with
          trials;
          seed = spec_seed;
          concretization = concretize_all g;
        }
      in
      (* static channel: does the change-set audit notice that the mutated
         transform's declared change set no longer covers its true diff? *)
      let audit_flagged =
        try Option.map (fun fs -> fs <> []) (Analysis.Audit.check_xform g mutated site)
        with _ -> None
      in
      (* exact dependence channel: the translation validator's refutation
         model, or a race finding's solver witness, is a concrete valuation
         exhibiting the seeded bug *)
      let dep_witness =
        try
          match Analysis.Equiv.certify ~symbols:config.Difftest.concretization g mutated site with
          | Some (Analysis.Equiv.Refuted w) -> Some w.Analysis.Equiv.valuation
          | _ -> (
              match Analysis.Delta.verify ~symbols:config.Difftest.concretization g mutated site with
              | Some fs -> List.find_map Analysis.Races.witness_of_finding fs
              | None -> None)
        with _ -> None
      in
      (* replay the witness as a directed fuzz seed: one trial pinned to the
         witness valuation must reproduce the failure (pinned names the
         cutout does not sample are ignored by constraint derivation) *)
      let dep_confirmed =
        match dep_witness with
        | None -> None
        | Some valuation -> (
            let directed =
              {
                config with
                Difftest.trials = 1;
                custom_constraints =
                  List.map (fun (s, v) -> (s, (v, v))) valuation
                  @ config.Difftest.custom_constraints;
              }
            in
            try
              match (Difftest.test_instance ~config:directed g mutated site).Difftest.verdict with
              | Difftest.Fail _ -> Some true
              | Difftest.Pass -> Some false
            with _ -> None)
      in
      let report = Difftest.test_instance ~config g mutated site in
      let localized =
        match report.Difftest.verdict with
        | Difftest.Fail { kind = Difftest.Numerical _; _ } -> (
            try
              match Localize.of_report ~config ~original:g ~xform:mutated report with
              | Some (_ :: _ as divs) ->
                  Some
                    (List.exists
                       (fun (d : Localize.divergence) ->
                         List.mem d.Localize.container expected_containers)
                       divs)
              | Some [] | None -> None
            with _ -> None)
        | _ -> None
      in
      verdict_result ~localized ~audit_flagged ~dep_witness ~dep_confirmed report

(* Fixed MPI scenario: scatter + allreduce + bcast + gather, enough traffic
   that every collective is attackable (see Plan.mpi_specs). *)
let mpi_scenario ?policy ~ranks ~len () =
  let src = Array.init (ranks * len) (fun i -> 1.0 +. (0.25 *. float_of_int i)) in
  let bufs = Array.init ranks (fun _ -> Array.make len 0.) in
  let dst = Array.make (ranks * len) 0. in
  let c = Mpi_sim.Mpi.create ?policy ranks in
  Mpi_sim.Mpi.scatter c ~root:0 ~src bufs;
  Mpi_sim.Mpi.allreduce_sum c bufs;
  Mpi_sim.Mpi.bcast c ~root:0 bufs;
  Mpi_sim.Mpi.gather c ~root:0 bufs ~dst;
  (dst, Mpi_sim.Mpi.stats c)

let mpi_probe ~policy ~ranks ~len =
  let clean, _ = mpi_scenario ~ranks ~len () in
  match mpi_scenario ~policy ~ranks ~len () with
  | faulty, (st : Mpi_sim.Mpi.stats) ->
      R_mpi
        {
          fault = None;
          data_ok = faulty = clean;
          healed = st.Mpi_sim.Mpi.healed;
          retransmits = st.Mpi_sim.Mpi.retransmits;
          backoff = st.Mpi_sim.Mpi.backoff;
        }
  | exception Mpi_sim.Mpi.Mpi_fault { kind; message; retries } ->
      R_mpi
        {
          fault =
            Some
              (Printf.sprintf "%s@%d after %d retries"
                 (Mpi_sim.Mpi.fault_kind_to_string kind)
                 message retries);
          data_ok = false;
          healed = 0;
          retransmits = retries;
          backoff = 0;
        }

(* ---- network / distributed-service chaos probe --------------------------- *)

let instance_lines path =
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       let l = input_line ic in
       if String.length l >= 18 && String.sub l 0 18 = {|{"type":"instance"|} then
         lines := l :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !lines

(* Two campaigns over the same tiny workload set and seed: a serial local
   reference, then a remote run through one worker process — fronted by the
   fault-injecting proxy and/or SIGKILLed mid-campaign per the spec. The
   probe's only quantitative claim is byte-identity of the journals' instance
   lines; everything else (which failure classes fired, whether the run
   degraded to the local pool) is qualitative evidence, so the report stays
   deterministic across reruns. *)
let net_probe ~trials ~spec_seed ~net ~kill_worker_after ~workloads =
  let programs = List.map (fun w -> (w, Plan.workload_by_name w)) workloads in
  let xforms =
    match Transforms.Registry.all_correct () with
    | a :: b :: _ -> [ a; b ]
    | l -> l
  in
  let config = { Difftest.default_config with trials; seed = spec_seed } in
  let base =
    {
      Engine.Worker.default_options with
      deadline_s = 20.;
      limit_per = Some 2;
    }
  in
  let journal_a = Filename.temp_file "ffnet_ref" ".jsonl" in
  let journal_b = Filename.temp_file "ffnet_chaos" ".jsonl" in
  let worker_sock, worker_port = Engine.Supervisor.listen_on ~port:0 () in
  let worker_pid =
    match Unix.fork () with
    | 0 ->
        (try Engine.Supervisor.serve_worker ~catalog:xforms worker_sock with _ -> ());
        Unix._exit 0
    | pid ->
        (try Unix.close worker_sock with Unix.Unix_error _ -> ());
        pid
  in
  let proxy = Option.map (fun p -> Netfault.start ~policy:p ~target_port:worker_port ()) net in
  let cleanup () =
    (try Unix.kill worker_pid Sys.sigkill with Unix.Unix_error _ -> ());
    (try ignore (Unix.waitpid [] worker_pid) with Unix.Unix_error _ -> ());
    Option.iter Netfault.stop proxy;
    List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) [ journal_a; journal_b ]
  in
  Fun.protect ~finally:cleanup @@ fun () ->
  ignore
    (Engine.Worker.run_campaign
       ~options:{ base with journal_path = Some journal_a }
       ~config programs xforms);
  let evidence = ref [] in
  let events =
    {
      Engine.Supervisor.null_events with
      on_failure =
        (fun _ cls -> evidence := Engine.Supervisor.failure_class_name cls :: !evidence);
    }
  in
  let policy =
    {
      Engine.Supervisor.connect_timeout_s = 2.;
      heartbeat_s = 2.;
      hang_grace_s = 2.;
      max_failures = 2;
      backoff_base_s = 0.05;
      backoff_max_s = 0.2;
    }
  in
  let port = match proxy with Some p -> p.Netfault.port | None -> worker_port in
  let seen = ref 0 in
  let sink line =
    if String.length line >= 18 && String.sub line 0 18 = {|{"type":"instance"|} then begin
      incr seen;
      match kill_worker_after with
      | Some k when !seen = k -> (
          try Unix.kill worker_pid Sys.sigkill with Unix.Unix_error _ -> ())
      | _ -> ()
    end
  in
  let remote =
    Engine.Supervisor.executor ~policy ~events
      ~workers:[ { Engine.Supervisor.host = "127.0.0.1"; port } ]
      ()
  in
  ignore
    (Engine.Worker.run_campaign
       ~options:
         { base with journal_path = Some journal_b; remote = Some remote; journal_sink = Some sink }
       ~config programs xforms);
  let identical = instance_lines journal_a = instance_lines journal_b in
  let degraded =
    List.exists
      (function Engine.Journal.Footer f -> f.Engine.Journal.degraded | _ -> false)
      (Engine.Journal.load journal_b)
  in
  R_net { identical; degraded; evidence = List.sort_uniq compare !evidence }

let probe_spec ~trials ~seed (spec : Plan.spec) =
  let spec_seed = Campaign.instance_seed ~global:seed spec.Plan.id in
  match spec.Plan.payload with
  | Plan.Interp_fault { workload; inject } -> interp_probe ~trials ~spec_seed ~workload ~inject
  | Plan.Transform_fault { workload; xform; kind; mutation_seed; site; expected_containers } ->
      transform_probe ~trials ~spec_seed ~workload ~xform ~kind ~mutation_seed ~site
        ~expected_containers
  | Plan.Mpi_disturbance { policy; ranks; payload_len } ->
      mpi_probe ~policy ~ranks ~len:payload_len
  | Plan.Net_disturbance { net; kill_worker_after; workloads } ->
      net_probe ~trials ~spec_seed ~net ~kill_worker_after ~workloads

(* ---- classification ------------------------------------------------------ *)

let classify (spec : Plan.spec) (r : probe_result) =
  match (spec.Plan.expect, r) with
  (* the injected defect may be caught statically (the change-set audit sees
     the mutated transform's declaration no longer covers its true diff)
     even when every fuzz trial happens to agree *)
  | ( (Plan.Must_semantics | Plan.Must_detect),
      R_verdict { klass = None; dep_confirmed = Some true; _ } ) ->
      (* the fuzz budget missed it, but the exact dependence tier produced a
         witness whose directed replay failed — detection with a proof *)
      Detected { got = "dependence witness"; first_trial = 0 }
  | ( (Plan.Must_semantics | Plan.Must_detect),
      R_verdict { klass = None; audit_flagged = Some true; _ } ) ->
      Detected { got = "change-set audit"; first_trial = 0 }
  | (Plan.Must_semantics | Plan.Must_detect), R_verdict { klass = None; detail; _ } ->
      Missed { detail }
  | Plan.Must_semantics, R_verdict { klass = Some Difftest.Semantics; first_trial; _ } ->
      Detected { got = "semantic change"; first_trial }
  | Plan.Must_semantics, R_verdict { klass = Some k; _ } ->
      Misclassified { expected = "semantic change"; got = Difftest.class_to_string k }
  | Plan.Must_detect, R_verdict { klass = Some k; first_trial; _ } ->
      Detected { got = Difftest.class_to_string k; first_trial }
  | Plan.Must_heal, R_mpi { fault = None; data_ok = true; healed; _ } when healed > 0 ->
      Detected { got = "healed"; first_trial = 0 }
  | Plan.Must_heal, R_mpi { fault = None; data_ok = true; _ } ->
      Missed { detail = "fault never armed: no recovery recorded" }
  | Plan.Must_heal, R_mpi { fault = None; data_ok = false; _ } ->
      Missed { detail = "data silently corrupted" }
  | Plan.Must_heal, R_mpi { fault = Some f; _ } ->
      Misclassified { expected = "healed"; got = "Mpi_fault " ^ f }
  | Plan.Must_fault, R_mpi { fault = Some f; _ } -> Detected { got = "Mpi_fault " ^ f; first_trial = 0 }
  | Plan.Must_fault, R_mpi { fault = None; data_ok; _ } ->
      Missed
        {
          detail =
            (if data_ok then "persistent fault healed silently" else "no typed fault; data corrupted");
        }
  (* chaos probes: healing means the supervised campaign absorbed a fault it
     provably saw (typed failure classes fired) and still produced instance
     lines byte-identical to the serial reference *)
  | Plan.Must_heal, R_net { identical = true; degraded; evidence = _ :: _ as ev } ->
      Detected
        {
          got =
            Printf.sprintf "healed (%s%s)" (String.concat "," ev)
              (if degraded then "; degraded to local pool" else "");
          first_trial = 0;
        }
  | Plan.Must_heal, R_net { identical = true; evidence = []; _ } ->
      Missed { detail = "fault never armed: no worker failure observed" }
  | Plan.Must_heal, R_net { identical = false; _ } ->
      Missed { detail = "journal instance lines diverged from the serial reference" }
  | (Plan.Must_heal | Plan.Must_fault), R_verdict _
  | (Plan.Must_semantics | Plan.Must_detect), (R_mpi _ | R_net _)
  | Plan.Must_fault, R_net _ ->
      Quarantined { detail = "probe returned a mismatched result shape" }

let localized_of = function
  | R_verdict { localized; _ } -> localized
  | R_mpi _ | R_net _ -> None

let audit_of = function
  | R_verdict { audit_flagged; _ } -> audit_flagged
  | R_mpi _ | R_net _ -> None

let dep_of = function
  | R_verdict { dep_witness = Some _; dep_confirmed; _ } ->
      Some (dep_confirmed = Some true)
  | R_verdict { dep_witness = None; _ } | R_mpi _ | R_net _ -> None

(* ---- campaign ------------------------------------------------------------ *)

let max_attempts = 3

let failure_detail = function
  | Engine.Worker.Timed_out { deadline_s } -> Printf.sprintf "timed out after %.1fs" deadline_s
  | Engine.Worker.Crashed { detail } -> "crashed: " ^ detail

(* Graceful degradation: a killed probe is retried serially with its deadline
   doubled each attempt; a probe that only succeeds on a retry is run once
   more to confirm the verdict is stable. Flaky or never-finishing specs are
   quarantined — recorded, never fatal, never miscounted as missed. *)
let settle ~deadline_s thunk first =
  match first with
  | Ok r -> (`Ready r, 1)
  | Error f0 ->
      let rec retry attempt deadline last =
        if attempt > max_attempts then (`Quarantine (failure_detail last), max_attempts)
        else
          match Engine.Worker.supervise ~deadline_s:deadline thunk with
          | Error f -> retry (attempt + 1) (deadline *. 2.) f
          | Ok r -> (
              (* confirm the late success is stable before trusting it *)
              match Engine.Worker.supervise ~deadline_s:deadline thunk with
              | Ok r' when r' = r -> (`Ready r, attempt)
              | Ok _ -> (`Quarantine "flaky: verdict changed across retries", attempt)
              | Error f -> (`Quarantine ("flaky: " ^ failure_detail f), attempt))
      in
      retry 2 (deadline_s *. 2.) f0

let run ?(j = 1) ?(deadline_s = 60.) ?(trials = 10) ?level ?generated ?(progress = false) ~seed
    () =
  let specs = Plan.catalog ?level ?generated ~seed () in
  let thunks = Array.of_list (List.map (fun s () -> probe_spec ~trials ~seed s) specs) in
  let n = Array.length thunks in
  let on_done i r =
    if progress then
      Printf.eprintf "[selfcheck] %s: %s\n%!" (List.nth specs i).Plan.id
        (match r with Ok _ -> "done" | Error f -> failure_detail f)
  in
  ignore n;
  let results = Engine.Worker.map_pool ~j ~deadline_s ~on_done thunks in
  let rows =
    List.mapi
      (fun i spec ->
        let settled, attempts = settle ~deadline_s thunks.(i) results.(i) in
        match settled with
        | `Ready r ->
            {
              spec;
              outcome = classify spec r;
              attempts;
              localized = localized_of r;
              audit = audit_of r;
              dep = dep_of r;
            }
        | `Quarantine detail ->
            {
              spec;
              outcome = Quarantined { detail };
              attempts;
              localized = None;
              audit = None;
              dep = None;
            })
      specs
  in
  { seed; trials; rows }

(* ---- aggregation --------------------------------------------------------- *)

type totals = {
  specs : int;
  detected : int;
  missed : int;
  misclassified : int;
  quarantined : int;
  core_total : int;  (** interp + transform specs, quarantined excluded *)
  core_detected : int;
  semantics_total : int;
  semantics_detected : int;
  mpi_total : int;
  mpi_detected : int;
  net_total : int;  (** distributed-service chaos specs, quarantined excluded *)
  net_detected : int;
  loc_checked : int;
  loc_accurate : int;
  dep_expected : int;
      (** non-quarantined subset-shift / wrong-stride transform specs — the
          mutations the exact dependence tier must catch statically *)
  dep_witnessed : int;  (** of those, a solver witness was produced *)
  dep_confirmed : int;  (** of those, the directed replay reproduced the failure *)
  extra_attempts : int;
}

let totals (r : report) =
  let z =
    {
      specs = 0;
      detected = 0;
      missed = 0;
      misclassified = 0;
      quarantined = 0;
      core_total = 0;
      core_detected = 0;
      semantics_total = 0;
      semantics_detected = 0;
      mpi_total = 0;
      mpi_detected = 0;
      net_total = 0;
      net_detected = 0;
      loc_checked = 0;
      loc_accurate = 0;
      dep_expected = 0;
      dep_witnessed = 0;
      dep_confirmed = 0;
      extra_attempts = 0;
    }
  in
  List.fold_left
    (fun t { spec; outcome; attempts; localized; dep; _ } ->
      let hit = match outcome with Detected _ -> 1 | _ -> 0 in
      let quarantined = match outcome with Quarantined _ -> true | _ -> false in
      let core =
        (not quarantined)
        && (spec.Plan.level = Plan.L_interp || spec.Plan.level = Plan.L_transform)
      in
      let mpi = (not quarantined) && spec.Plan.level = Plan.L_mpi in
      let net = (not quarantined) && spec.Plan.level = Plan.L_net in
      let sem = spec.Plan.expect = Plan.Must_semantics in
      let dep_spec =
        (not quarantined)
        &&
        match spec.Plan.payload with
        | Plan.Transform_fault { kind = Mutate.Subset_shift | Mutate.Wrong_stride; _ } -> true
        | _ -> false
      in
      {
        specs = t.specs + 1;
        detected = t.detected + hit;
        missed = (t.missed + match outcome with Missed _ -> 1 | _ -> 0);
        misclassified = (t.misclassified + match outcome with Misclassified _ -> 1 | _ -> 0);
        quarantined = (t.quarantined + if quarantined then 1 else 0);
        core_total = (t.core_total + if core then 1 else 0);
        core_detected = (t.core_detected + if core then hit else 0);
        semantics_total = (t.semantics_total + if sem then 1 else 0);
        semantics_detected = (t.semantics_detected + if sem then hit else 0);
        mpi_total = (t.mpi_total + if mpi then 1 else 0);
        mpi_detected = (t.mpi_detected + if mpi then hit else 0);
        net_total = (t.net_total + if net then 1 else 0);
        net_detected = (t.net_detected + if net then hit else 0);
        loc_checked = (t.loc_checked + match localized with Some _ -> 1 | None -> 0);
        loc_accurate = (t.loc_accurate + match localized with Some true -> 1 | _ -> 0);
        dep_expected = (t.dep_expected + if dep_spec then 1 else 0);
        dep_witnessed = (t.dep_witnessed + if dep_spec && dep <> None then 1 else 0);
        dep_confirmed = (t.dep_confirmed + if dep_spec && dep = Some true then 1 else 0);
        extra_attempts = t.extra_attempts + attempts - 1;
      })
    z r.rows

let detection_rate r =
  let t = totals r in
  if t.core_total = 0 then 1.0 else float_of_int t.core_detected /. float_of_int t.core_total

let misses r =
  List.filter
    (fun { outcome; _ } -> match outcome with Missed _ | Misclassified _ -> true | _ -> false)
    r.rows

(* The selfcheck gate: the core detection rate must reach [floor], and with
   [require_semantics] every Must_semantics spec must be Detected outright —
   a quarantined semantics spec fails the gate, since detection was not
   proven. *)
let passed ?(floor = 0.95) ?(require_semantics = false) ?(require_deps = false) r =
  let t = totals r in
  detection_rate r >= floor
  && ((not require_semantics) || t.semantics_detected = t.semantics_total)
  && ((not require_deps) || t.dep_confirmed = t.dep_expected)

(* ---- rendering ----------------------------------------------------------- *)

let outcome_detail = function
  | Detected { got; first_trial } ->
      if first_trial > 0 then Printf.sprintf "%s (first trial %d)" got first_trial else got
  | Missed { detail } -> detail
  | Misclassified { expected; got } -> Printf.sprintf "expected %s, got %s" expected got
  | Quarantined { detail } -> detail

let render r =
  let b = Buffer.create 4096 in
  let t = totals r in
  Buffer.add_string b
    (Printf.sprintf "faultlab selfcheck · seed %d · %d trials/spec · %d specs\n" r.seed r.trials
       t.specs);
  List.iter
    (fun ({ spec; outcome; attempts; localized; audit; dep } : row) ->
      Buffer.add_string b
        (Printf.sprintf "  %-13s %-45s %s%s%s%s%s\n"
           (String.uppercase_ascii (outcome_name outcome))
           spec.Plan.id (outcome_detail outcome)
           (match localized with
           | Some true -> " · localized"
           | Some false -> " · mislocalized"
           | None -> "")
           (match audit with
           | Some true -> " · audit"
           | Some false | None -> "")
           (match dep with
           | Some true -> " · dep-witness"
           | Some false -> " · dep-witness (not reproduced)"
           | None -> "")
           (if attempts > 1 then Printf.sprintf " · %d attempts" attempts else "")))
    r.rows;
  Buffer.add_string b
    (Printf.sprintf
       "detection: %d/%d core (%.1f%%) · %d/%d mpi · %d/%d net · semantics gate %d/%d\n"
       t.core_detected t.core_total
       (100. *. detection_rate r)
       t.mpi_detected t.mpi_total t.net_detected t.net_total t.semantics_detected
       t.semantics_total);
  Buffer.add_string b
    (Printf.sprintf
       "misclassified: %d · quarantined: %d · localization: %d/%d accurate · extra attempts: %d\n"
       t.misclassified t.quarantined t.loc_accurate t.loc_checked t.extra_attempts);
  if t.dep_expected > 0 then
    Buffer.add_string b
      (Printf.sprintf
         "dependence witnesses: %d/%d specs witnessed, %d reproduced as directed seeds\n"
         t.dep_witnessed t.dep_expected t.dep_confirmed);
  let ms = misses r in
  if ms <> [] then begin
    Buffer.add_string b "misses:\n";
    List.iter
      (fun ({ spec; outcome; _ } : row) ->
        Buffer.add_string b (Printf.sprintf "  %s: %s\n" spec.Plan.id (outcome_detail outcome)))
      ms
  end;
  Buffer.contents b

(* ---- deterministic JSONL report ------------------------------------------ *)

module Json = Engine.Journal.Json

let row_json ({ spec; outcome; attempts; localized; audit; dep } : row) =
  Json.Obj
    ([
       ("kind", Json.Str "spec");
       ("id", Json.Str spec.Plan.id);
       ("level", Json.Str (Plan.level_to_string spec.Plan.level));
       ("expect", Json.Str (Plan.expect_to_string spec.Plan.expect));
       ("descr", Json.Str spec.Plan.descr);
       ("outcome", Json.Str (outcome_name outcome));
       ("detail", Json.Str (outcome_detail outcome));
       ("attempts", Json.Num (float_of_int attempts));
     ]
    @ (match outcome with
      | Detected { first_trial; _ } when first_trial > 0 ->
          [ ("first_trial", Json.Num (float_of_int first_trial)) ]
      | _ -> [])
    @ (match localized with
      | None -> [ ("localized", Json.Null) ]
      | Some v -> [ ("localized", Json.Bool v) ])
    @ (match audit with
      | None -> [ ("audit_flagged", Json.Null) ]
      | Some v -> [ ("audit_flagged", Json.Bool v) ])
    @
    match dep with
    | None -> [ ("dep_witness", Json.Null) ]
    | Some v -> [ ("dep_witness", Json.Bool v) ])

let to_jsonl r =
  let t = totals r in
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Json.to_string
       (Json.Obj
          [
            ("kind", Json.Str "selfcheck");
            ("seed", Json.Num (float_of_int r.seed));
            ("trials", Json.Num (float_of_int r.trials));
            ("specs", Json.Num (float_of_int t.specs));
          ]));
  Buffer.add_char b '\n';
  List.iter
    (fun row ->
      Buffer.add_string b (Json.to_string (row_json row));
      Buffer.add_char b '\n')
    r.rows;
  Buffer.add_string b
    (Json.to_string
       (Json.Obj
          [
            ("kind", Json.Str "totals");
            ("detected", Json.Num (float_of_int t.detected));
            ("missed", Json.Num (float_of_int t.missed));
            ("misclassified", Json.Num (float_of_int t.misclassified));
            ("quarantined", Json.Num (float_of_int t.quarantined));
            ("core_detected", Json.Num (float_of_int t.core_detected));
            ("core_total", Json.Num (float_of_int t.core_total));
            ("detection_rate", Json.Num (detection_rate r));
            ("semantics_detected", Json.Num (float_of_int t.semantics_detected));
            ("semantics_total", Json.Num (float_of_int t.semantics_total));
            ("mpi_detected", Json.Num (float_of_int t.mpi_detected));
            ("mpi_total", Json.Num (float_of_int t.mpi_total));
            ("net_detected", Json.Num (float_of_int t.net_detected));
            ("net_total", Json.Num (float_of_int t.net_total));
            ("localization_checked", Json.Num (float_of_int t.loc_checked));
            ("localization_accurate", Json.Num (float_of_int t.loc_accurate));
            ("dep_expected", Json.Num (float_of_int t.dep_expected));
            ("dep_witnessed", Json.Num (float_of_int t.dep_witnessed));
            ("dep_confirmed", Json.Num (float_of_int t.dep_confirmed));
            ("extra_attempts", Json.Num (float_of_int t.extra_attempts));
          ]));
  Buffer.add_char b '\n';
  Buffer.contents b
