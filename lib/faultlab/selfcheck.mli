(** The self-validation campaign: run every fault in the {!Plan} catalog
    through the stack and score whether the oracles caught it.

    Interpreter and transform faults go through the full differential-testing
    pipeline ({!Fuzzyflow.Difftest.test_instance}) inside forked workers
    (reusing the engine's pool, deadlines and kill path); MPI disturbances run
    the fixed collective scenario against a clean reference. Every spec lands
    as exactly one typed outcome — an injected fault can never abort the
    campaign. The report is deterministic for a seed: per-spec seeds derive
    from the campaign seed and spec id, rows are emitted in catalog order, and
    no wall-clock data enters the report, so reruns and different [-j] levels
    produce byte-identical files. *)

(** What one forked probe reports back (marshal-safe). *)
type probe_result =
  | R_verdict of {
      klass : Fuzzyflow.Difftest.failure_class option;  (** [None]: verdict was Pass *)
      first_trial : int;
      failing_trials : int;
      localized : bool option;
          (** for transform faults with a numerical failure: did localization
              name the damaged container? [None] when not applicable *)
      audit_flagged : bool option;
          (** for transform faults: did the change-set audit flag the mutated
              transform's declaration? [None] when not applicable *)
      dep_witness : (string * int) list option;
          (** for transform faults: concrete valuation from the exact
              dependence tier (the translation validator's refutation model or
              a race finding's [dep_witness]); [None] when no witness *)
      dep_confirmed : bool option;
          (** did the witness, replayed as a one-trial directed fuzz seed,
              reproduce the failure? *)
      detail : string;
    }
  | R_mpi of {
      fault : string option;  (** printed [Mpi_fault], when one surfaced *)
      data_ok : bool;  (** final data bit-identical to the clean run *)
      healed : int;
      retransmits : int;
      backoff : int;
    }
  | R_net of {
      identical : bool;
          (** the chaos campaign's journal instance lines are byte-identical
              to the same-seed serial reference *)
      degraded : bool;  (** the campaign fell back to the local pool *)
      evidence : string list;
          (** sorted distinct {!Engine.Supervisor.failure_class} names the
              supervisor observed; empty means the fault never armed *)
    }
      (** distributed-service chaos probe: a serial reference campaign versus
          the same campaign through a proxied/killed remote worker *)

type outcome =
  | Detected of { got : string; first_trial : int }
  | Missed of { detail : string }  (** the fault ran and no oracle noticed *)
  | Misclassified of { expected : string; got : string }
  | Quarantined of { detail : string }
      (** killed past every escalated deadline, or flaky across retries *)

val outcome_name : outcome -> string

type row = {
  spec : Plan.spec;
  outcome : outcome;
  attempts : int;
  localized : bool option;
  audit : bool option;  (** change-set audit verdict, [None] when not applicable *)
  dep : bool option;
      (** exact dependence channel: [Some true] — witness found and its
          directed replay reproduced the failure; [Some false] — witness found
          but not reproduced; [None] — no witness / not applicable *)
}

type report = { seed : int; trials : int; rows : row list }

(** Run one spec's probe in-process (the body the forked workers execute).
    Exposed for tests and the bench. *)
val probe_spec : trials:int -> seed:int -> Plan.spec -> probe_result

(** Score a probe result against the spec's expectation. Total: every result
    maps to exactly one outcome. *)
val classify : Plan.spec -> probe_result -> outcome

(** Run the campaign: the catalog in parallel workers ([j], [deadline_s] per
    probe), killed probes retried with exponential deadline escalation and
    quarantined when they stay dead or flip verdicts. [level] restricts the
    catalog; [trials] is the fuzzing budget per difftest probe;
    [generated:(style, n)] extends the catalog with mutation specs over the
    first [n] admitted generated programs (see {!Plan.catalog}). *)
val run :
  ?j:int ->
  ?deadline_s:float ->
  ?trials:int ->
  ?level:Plan.level ->
  ?generated:string * int ->
  ?progress:bool ->
  seed:int ->
  unit ->
  report

type totals = {
  specs : int;
  detected : int;
  missed : int;
  misclassified : int;
  quarantined : int;
  core_total : int;  (** interp + transform specs, quarantined excluded *)
  core_detected : int;
  semantics_total : int;
  semantics_detected : int;
  mpi_total : int;
  mpi_detected : int;
  net_total : int;  (** distributed-service chaos specs, quarantined excluded *)
  net_detected : int;
  loc_checked : int;
  loc_accurate : int;
  dep_expected : int;
      (** non-quarantined subset-shift / wrong-stride transform specs — the
          mutations the exact dependence tier must catch statically *)
  dep_witnessed : int;  (** of those, a solver witness was produced *)
  dep_confirmed : int;  (** of those, the directed replay reproduced the failure *)
  extra_attempts : int;
}

val totals : report -> totals

(** Detected fraction of non-quarantined interpreter + transform specs
    (1.0 when the filtered catalog has none). *)
val detection_rate : report -> float

(** The itemized misses: rows that are [Missed] or [Misclassified]. *)
val misses : report -> row list

(** The gate: [detection_rate >= floor] (default 0.95); with
    [require_semantics] every [Must_semantics] spec must be [Detected] —
    quarantine does not excuse a semantics obligation; with [require_deps]
    every subset-shift / wrong-stride transform spec must yield an exact
    dependence witness whose directed replay reproduces the failure. *)
val passed : ?floor:float -> ?require_semantics:bool -> ?require_deps:bool -> report -> bool

(** Human-readable per-spec listing and summary. *)
val render : report -> string

(** Deterministic JSONL report: header, one line per spec in catalog order,
    totals footer. No timing data — byte-identical across reruns and [-j]. *)
val to_jsonl : report -> string
