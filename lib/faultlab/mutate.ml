open Transforms

let identity () : Xform.t =
  {
    name = "Identity";
    find =
      (fun g ->
        Sdfg.Graph.states g
        |> List.filter_map (fun (sid, st) ->
               match Sdfg.State.node_ids st with
               | [] -> None
               | ns -> Some (Xform.dataflow_site ~state:sid ~nodes:ns ~descr:"identity")));
    apply =
      (fun _g site ->
        { Sdfg.Diff.nodes = List.map (fun n -> (site.Xform.state, n)) site.Xform.nodes; states = [] });
    certify_hint = None;
  }

type kind = Subset_shift | Drop_memlet | Wrong_stride

let kind_to_string = function
  | Subset_shift -> "subset-shift"
  | Drop_memlet -> "drop-memlet"
  | Wrong_stride -> "wrong-stride"

let kind_of_string = function
  | "subset-shift" -> Subset_shift
  | "drop-memlet" -> Drop_memlet
  | "wrong-stride" -> Wrong_stride
  | s -> invalid_arg ("Mutate.kind_of_string: " ^ s)

(* A range spanning (symbolically) more than one element: damaging its stride
   changes the element set; a single-point range ignores its stride. *)
let multi_element (r : Symbolic.Subset.range) = r.lo <> r.hi

let edge_memlet (e : Sdfg.State.edge) = e.memlet

(* Only memlets the interpreter actually evaluates can change behaviour:
   edges adjacent to tasklet / library nodes and access-to-access copies.
   Memlets on pure routing edges (through map entries/exits) are analysis
   annotations — damaging one is invisible at runtime and would make the
   spec an impossible detection obligation. *)
let runtime_edge st (e : Sdfg.State.edge) =
  match (Sdfg.State.node st e.src, Sdfg.State.node st e.dst) with
  | Sdfg.Node.Tasklet _, _
  | _, Sdfg.Node.Tasklet _
  | Sdfg.Node.Library _, _
  | _, Sdfg.Node.Library _
  | Sdfg.Node.Access _, Sdfg.Node.Access _ ->
      true
  | _ -> false

(* Mutation targets among the edges the base transformation touched, in a
   canonical order that survives cutout extraction (node ids are preserved
   by extraction, edge ids are not — so sort by payload, not e_id).
   Restricting to change-set-adjacent edges keeps the whole-program and
   cutout-level applications aligned: both see exactly these edges, so both
   damage the same logical one. *)
let candidates kind st ~changed =
  Sdfg.State.edges st
  |> List.filter (fun (e : Sdfg.State.edge) ->
         List.mem e.src changed && List.mem e.dst changed
         && runtime_edge st e
         &&
         match edge_memlet e with
         | None -> false
         | Some m -> (
             match (kind, m.Sdfg.Memlet.subset) with
             | Drop_memlet, _ -> true
             | Subset_shift, [] -> false
             | Subset_shift, _ :: _ -> true
             | Wrong_stride, _ -> false))
  |> List.sort (fun (a : Sdfg.State.edge) (b : Sdfg.State.edge) ->
         (* Writes first: a damaged write often stays in bounds and diverges
            numerically (localizable), where a damaged read tends to run off
            the end of its container. *)
         let key (e : Sdfg.State.edge) =
           let is_read =
             match Sdfg.State.node st e.dst with
             | Sdfg.Node.Tasklet _ | Sdfg.Node.Library _ -> true
             | _ -> false
           in
           (is_read, (Option.get (edge_memlet e)).Sdfg.Memlet.data, e.src, e.dst, e.e_id)
         in
         compare (key a) (key b))

let shift_range delta (r : Symbolic.Subset.range) =
  {
    r with
    Symbolic.Subset.lo = Symbolic.Expr.add r.Symbolic.Subset.lo (Symbolic.Expr.int delta);
    hi = Symbolic.Expr.add r.Symbolic.Subset.hi (Symbolic.Expr.int delta);
  }

let corrupt_edge kind st (e : Sdfg.State.edge) =
  match kind with
  | Drop_memlet -> Sdfg.State.remove_edge st e.e_id
  | Subset_shift -> (
      let m = Option.get (edge_memlet e) in
      match m.Sdfg.Memlet.subset with
      | [] -> raise (Xform.Cannot_apply "faultlab: scalar memlet cannot shift")
      | d0 :: rest ->
          Sdfg.State.set_edge_memlet st e.e_id
            (Some { m with Sdfg.Memlet.subset = shift_range 1 d0 :: rest }))
  | Wrong_stride -> raise (Xform.Cannot_apply "faultlab: wrong-stride targets map entries")

(* Wrong-stride targets map entries, not memlets: setting the step of a
   transformed map's unit-stride range to 2 — the classic vectorization
   stride bug — skips every other iteration, leaving those elements
   unwritten. Only unit-stride ranges qualify: shrinking an already-strided
   range (a tile loop) densifies coverage instead, and idempotent
   recomputation hides it. *)
let stride_candidates st ~changed =
  List.filter_map
    (fun n ->
      match Sdfg.State.node st n with
      | Sdfg.Node.Map_entry info -> (
          match info.Sdfg.Node.ranges with
          | d0 :: _ when multi_element d0 && d0.Symbolic.Subset.step = Symbolic.Expr.int 1 ->
              Some (n, info)
          | _ -> None)
      | _ -> None)
    (List.sort compare changed)

(* Localization ground truth for a strided map: the containers written by
   the computational nodes inside its scope. *)
let scope_written st entry =
  List.concat_map
    (fun n ->
      match Sdfg.State.node st n with
      | Sdfg.Node.Tasklet _ | Sdfg.Node.Library _ ->
          List.filter_map
            (fun (o : Sdfg.State.edge) ->
              Option.map (fun m -> m.Sdfg.Memlet.data) (edge_memlet o))
            (Sdfg.State.out_edges st n)
      | _ -> [])
    (Sdfg.State.scope_nodes st entry)
  |> List.sort_uniq compare

(* Localization ground truth: the containers where corrupted values first
   become observable. A damaged edge feeding a tasklet/library node corrupts
   that node's outputs; a damaged write or copy edge corrupts its own
   container. *)
let downstream_writes st (e : Sdfg.State.edge) =
  let own = [ (Option.get (edge_memlet e)).Sdfg.Memlet.data ] in
  match Sdfg.State.node st e.dst with
  | Sdfg.Node.Tasklet _ | Sdfg.Node.Library _ -> (
      match
        List.filter_map
          (fun (o : Sdfg.State.edge) ->
            Option.map (fun m -> m.Sdfg.Memlet.data) (edge_memlet o))
          (Sdfg.State.out_edges st e.dst)
      with
      | [] -> own
      | writes -> List.sort_uniq compare writes)
  | _ -> own

(* The change set many transforms report is just the outer map entry/exit
   pair; the runtime-relevant edges sit one scope deeper, on the inner
   entries the transform introduced. Close over routing nodes (map
   entry/exit) to reach them ({!Sdfg.State.scope_closure}). The closure is
   scope-local, and cutout extraction keeps whole scopes with node ids
   intact, so the closure — and hence the candidate order — is identical in
   the whole program and in the cutout. *)
let inject kind ~seed g (site : Xform.site) (cs : Sdfg.Diff.change_set) =
  if site.Xform.state < 0 then raise (Xform.Cannot_apply "faultlab: control-flow site");
  let st = Sdfg.Graph.state g site.Xform.state in
  let changed =
    Sdfg.State.scope_closure st
      (List.filter_map
         (fun (s, n) -> if s = site.Xform.state then Some n else None)
         cs.Sdfg.Diff.nodes)
  in
  match kind with
  | Wrong_stride -> (
      match stride_candidates st ~changed with
      | [] -> raise (Xform.Cannot_apply "faultlab: no spanning map range at site")
      | cands -> (
          let n, info = List.nth cands (seed mod List.length cands) in
          match scope_written st n with
          | [] -> raise (Xform.Cannot_apply "faultlab: strided scope writes nothing")
          | corrupted ->
              let ranges =
                match info.Sdfg.Node.ranges with
                | d0 :: rest -> { d0 with Symbolic.Subset.step = Symbolic.Expr.int 2 } :: rest
                | [] -> assert false
              in
              Sdfg.State.replace_node st n (Sdfg.Node.Map_entry { info with Sdfg.Node.ranges });
              corrupted))
  | Subset_shift | Drop_memlet -> (
      match candidates kind st ~changed with
      | [] -> raise (Xform.Cannot_apply "faultlab: no mutable memlet edge at site")
      | cands ->
          let e = List.nth cands (seed mod List.length cands) in
          let corrupted = downstream_writes st e in
          corrupt_edge kind st e;
          corrupted)

let seed_bug ?(seed = 0) kind (base : Xform.t) : Xform.t =
  {
    name = Printf.sprintf "%s+faultlab(%s)" base.name (kind_to_string kind);
    find = base.find;
    apply =
      (fun g site ->
        let cs = base.apply g site in
        let _ : string list = inject kind ~seed g site cs in
        cs);
    certify_hint = Some (Xform.Known_unsound ("faultlab seeded " ^ kind_to_string kind));
  }

let probe ?(seed = 0) kind (base : Xform.t) g =
  let try_site site =
    let g' = Sdfg.Graph.copy g in
    match base.Xform.apply g' site with
    | exception _ -> None
    | cs -> (
        match inject kind ~seed g' site cs with
        | corrupted -> Some (site, corrupted)
        | exception _ -> None)
  in
  List.find_map try_site (base.Xform.find g)
