(** The fault-injection catalog: which fault to seed where, and what the
    oracles owe us for it.

    Specs are generated deterministically from a campaign seed; every spec in
    the catalog is an armed fault (transform mutations are probed for
    applicability before inclusion), so each one is a concrete detection
    obligation the selfcheck campaign scores. *)

type level = L_interp | L_transform | L_mpi | L_net

val level_to_string : level -> string

(** @raise Invalid_argument on an unknown name. *)
val level_of_string : string -> level

(** What the stack owes for a spec: [Must_semantics] — the differential
    tester must fail every trial (Semantics class); [Must_detect] — any
    failing verdict counts; [Must_heal] — the MPI delivery layer must recover
    bit-identically with nonzero heal stats; [Must_fault] — a typed
    [Mpi_fault] must surface. *)
type expect = Must_semantics | Must_detect | Must_heal | Must_fault

val expect_to_string : expect -> string

type payload =
  | Interp_fault of { workload : string; inject : Interp.Exec.injection }
  | Transform_fault of {
      workload : string;
      xform : string;  (** registry name of the correct base transformation *)
      kind : Mutate.kind;
      mutation_seed : int;
      site : Transforms.Xform.site;  (** probed site where the mutation arms *)
      expected_containers : string list;  (** localization ground truth *)
    }
  | Mpi_disturbance of { policy : Mpi_sim.Mpi.policy; ranks : int; payload_len : int }
  | Net_disturbance of {
      net : Netfault.policy option;  (** proxy fault between supervisor and worker *)
      kill_worker_after : int option;
          (** SIGKILL the worker after this many journaled instances *)
      workloads : string list;  (** the campaign both runs execute *)
    }  (** chaos probe for the distributed campaign service; always [Must_heal] *)

type spec = { id : string; level : level; expect : expect; descr : string; payload : payload }

(** Resolve a workload name: generated-program names
    ([gen_<style>_s<seed>_c<idx>]) are rebuilt deterministically via
    {!Gen.Generate.by_name}; anything else is looked up in the NPBench set.
    @raise Invalid_argument for an unknown name. *)
val workload_by_name : string -> Sdfg.Graph.t

(** The full deterministic catalog for a campaign seed, optionally filtered
    to one level. Spec order is stable: interp, transform, generated, mpi,
    net.
    [generated:(style, n)] additionally probes transform mutations over the
    first [n] admitted generated programs of [(style, seed)] — the generator
    as a selfcheck subject; those specs carry level [L_transform]. *)
val catalog : ?level:level -> ?generated:string * int -> seed:int -> unit -> spec list
