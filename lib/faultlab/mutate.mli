(** Transform-level fault seeding (faultlab level 3).

    Takes an otherwise-correct transformation and arms a known bug class in
    its [apply]: after the base transformation runs, the application site is
    deterministically damaged — a memlet subset shifted by one (the classic
    off-by-one), a memlet edge dropped entirely, or a map's iteration stride
    set wrong. The damaged variant claims [Known_unsound], so the translation
    validator never vouches for it, and the selfcheck campaign verifies the
    differential tester catches the damage. *)

(** A no-op transformation whose cutout equals its source region: [find]
    yields one site per non-empty state (all nodes), [apply] reports those
    nodes as the change set without touching the graph. Differential testing
    then compares two structurally identical programs — the vehicle for
    interpreter-level injections, where any divergence is attributable to
    the injected fault alone. *)
val identity : unit -> Transforms.Xform.t

type kind =
  | Subset_shift  (** shift the first dimension of a memlet subset by +1 *)
  | Drop_memlet  (** remove a memlet-carrying edge at the site *)
  | Wrong_stride
      (** widen a unit-stride map range's step to 2, skipping every other
          iteration (a strided loop stays idempotent under densification, so
          only unit-stride maps are candidates) *)

val kind_to_string : kind -> string

(** @raise Invalid_argument on an unknown name. *)
val kind_of_string : string -> kind

(** [seed_bug kind base] is [base] with the mutation armed inside [apply]
    (after the base transformation, in the site's state). Targets are drawn
    only from the scope closure of the base transformation's reported change
    set and ordered canonically (writes first, then by container and node
    ids), so the whole-program and cutout-level applications damage the same
    logical target. [apply] raises [Cannot_apply] when the site offers no
    target. *)
val seed_bug : ?seed:int -> kind -> Transforms.Xform.t -> Transforms.Xform.t

(** First site of [base] on [g] where the mutation arms, with the containers
    where the corruption first becomes observable — the damaged container
    itself for writes and copies, the consuming node's outputs for reads
    (the localization ground truth). [None] when no site of [base] offers a
    target. *)
val probe :
  ?seed:int ->
  kind ->
  Transforms.Xform.t ->
  Sdfg.Graph.t ->
  (Transforms.Xform.site * string list) option
