(* A fault-injecting TCP proxy for chaos-testing the distributed campaign
   service. Mirrors the Mpi_sim policy design: one deterministic policy names
   the victim (connection index, server->client chunk index), whether the
   fault is persistent, and a seed for corruption — so a chaos run is
   replayable bit-for-bit.

   The proxy is deliberately protocol-blind: it forwards raw bytes and
   damages them at the transport level, exactly the faults the Wire layer's
   checksums, version checks and timeouts exist to catch. *)

type kind = Refuse | Corrupt | Disconnect | Stall

let kind_to_string = function
  | Refuse -> "refuse"
  | Corrupt -> "corrupt"
  | Disconnect -> "disconnect"
  | Stall -> "stall"

type policy = {
  kind : kind;
  victim_conn : int;  (* 0-based accepted-connection index *)
  victim_chunk : int;  (* 0-based server->client read index within the conn *)
  persistent : bool;  (* fault every conn from victim_conn on *)
  seed : int;
}

type t = { pid : int; port : int }

let applies policy conn =
  conn = policy.victim_conn || (policy.persistent && conn > policy.victim_conn)

let write_all fd buf n =
  let off = ref 0 in
  (try
     while !off < n do
       off := !off + Unix.write fd buf !off (n - !off)
     done
   with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ());
  ()

(* Flip one seed-chosen bit near the tail of the victim chunk. The tail is
   always payload (the frame header leads), so the damage must surface as a
   checksum mismatch — a typed decode failure, never a verdict. Damaging the
   header instead would also be caught, but as a length/timeout failure,
   which would make the observed failure class depend on the seed. *)
let corrupt_chunk ~seed buf n =
  if n > 0 then begin
    let off = n - 1 - (abs seed mod min n 8) in
    let bit = abs (seed / 8) mod 8 in
    Bytes.set buf off (Char.chr (Char.code (Bytes.get buf off) lxor (1 lsl bit)))
  end

let relay ~policy ~conn client server =
  let faulted = match policy with Some p -> applies p conn | None -> false in
  let buf = Bytes.create 65536 in
  let chunk = ref 0 in
  let stalled = ref false in
  let live = ref true in
  while !live do
    (match Unix.select [ client; server ] [] [] 1.0 with
    | [], _, _ -> ()
    | readable, _, _ ->
        List.iter
          (fun fd ->
            let n = try Unix.read fd buf 0 (Bytes.length buf) with Unix.Unix_error _ -> 0 in
            if n = 0 then live := false
            else if !stalled then () (* black-hole both directions *)
            else if fd == server then begin
              let c = !chunk in
              incr chunk;
              match policy with
              | Some p when faulted && c = p.victim_chunk -> (
                  match p.kind with
                  | Corrupt ->
                      corrupt_chunk ~seed:p.seed buf n;
                      write_all client buf n
                  | Disconnect -> live := false
                  | Stall -> stalled := true
                  | Refuse -> write_all client buf n)
              | _ -> write_all client buf n
            end
            else write_all server buf n)
          readable
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
  done

let proxy_loop ~policy ~target_port sock =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let conn = ref 0 in
  while true do
    (match Unix.accept sock with
    | client, _ ->
        let c = !conn in
        incr conn;
        let refuse =
          match policy with Some p -> p.kind = Refuse && applies p c | None -> false
        in
        if refuse then (try Unix.close client with Unix.Unix_error _ -> ())
        else begin
          (match
             let server = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
             (try
                Unix.connect server
                  (Unix.ADDR_INET (Unix.inet_addr_loopback, target_port))
              with e ->
                (try Unix.close server with Unix.Unix_error _ -> ());
                raise e);
             server
           with
          | server ->
              (try relay ~policy ~conn:c client server with _ -> ());
              (try Unix.close server with Unix.Unix_error _ -> ())
          | exception _ -> ());
          try Unix.close client with Unix.Unix_error _ -> ()
        end
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
  done

let start ?policy ~target_port () =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen sock 16;
  let port =
    match Unix.getsockname sock with Unix.ADDR_INET (_, p) -> p | _ -> assert false
  in
  match Unix.fork () with
  | 0 ->
      (try proxy_loop ~policy ~target_port sock with _ -> ());
      Unix._exit 0
  | pid ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      { pid; port }

let stop t =
  (try Unix.kill t.pid Sys.sigkill with Unix.Unix_error _ -> ());
  try ignore (Unix.waitpid [] t.pid) with Unix.Unix_error _ -> ()
