(** A fault-injecting TCP proxy for chaos-testing the distributed campaign
    service.

    Interposed between the supervisor and a worker, the proxy forwards raw
    bytes and injects exactly one family of transport fault, chosen by a
    deterministic {!policy} in the style of [Mpi_sim.Mpi.policy]: the victim
    is named by accepted-connection index and by server-to-client chunk
    index, [persistent] repeats the fault on every later connection, and
    [seed] picks the corrupted bit — so a chaos run replays bit-for-bit.

    The proxy never parses the wire protocol; the faults it injects are the
    ones {!Engine.Wire}'s magic/version/checksum/timeout machinery owes
    detection for, and the selfcheck net level scores that debt. *)

type kind =
  | Refuse  (** close the victim connection at accept, before any bytes *)
  | Corrupt  (** flip one seed-chosen bit in the victim chunk *)
  | Disconnect  (** drop both directions at the victim chunk *)
  | Stall  (** black-hole all traffic from the victim chunk on *)

val kind_to_string : kind -> string

type policy = {
  kind : kind;
  victim_conn : int;  (** 0-based accepted-connection index *)
  victim_chunk : int;  (** 0-based server-to-client read index *)
  persistent : bool;  (** also fault every connection after the victim *)
  seed : int;  (** corruption bit selector *)
}

type t = { pid : int; port : int }

(** Fork a proxy in front of [127.0.0.1:target_port]; connect to
    [127.0.0.1:(start ...).port] instead. [policy = None] relays
    transparently. *)
val start : ?policy:policy -> target_port:int -> unit -> t

(** Kill the proxy process and reap it. Idempotent. *)
val stop : t -> unit
