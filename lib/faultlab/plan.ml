type level = L_interp | L_transform | L_mpi | L_net

let level_to_string = function
  | L_interp -> "interp"
  | L_transform -> "transform"
  | L_mpi -> "mpi"
  | L_net -> "net"

let level_of_string = function
  | "interp" -> L_interp
  | "transform" -> L_transform
  | "mpi" -> L_mpi
  | "net" -> L_net
  | s -> invalid_arg ("Plan.level_of_string: " ^ s)

type expect = Must_semantics | Must_detect | Must_heal | Must_fault

let expect_to_string = function
  | Must_semantics -> "semantics"
  | Must_detect -> "detect"
  | Must_heal -> "heal"
  | Must_fault -> "fault"

type payload =
  | Interp_fault of { workload : string; inject : Interp.Exec.injection }
  | Transform_fault of {
      workload : string;
      xform : string;
      kind : Mutate.kind;
      mutation_seed : int;
      site : Transforms.Xform.site;
      expected_containers : string list;
    }
  | Mpi_disturbance of { policy : Mpi_sim.Mpi.policy; ranks : int; payload_len : int }
  | Net_disturbance of {
      net : Netfault.policy option;
      kill_worker_after : int option;
      workloads : string list;
    }

type spec = { id : string; level : level; expect : expect; descr : string; payload : payload }

(* Generated-program names ([gen_<style>_s<seed>_c<idx>]) carry everything
   needed to rebuild the graph; resolving them here means journal entries,
   corpus cases and selfcheck specs over generated workloads replay without
   any side-channel state. *)
let workload_by_name name =
  match Gen.Generate.by_name name with
  | Some c -> c.Gen.Generate.graph
  | None -> (
      match List.assoc_opt name (Workloads.Npbench.all ()) with
      | Some g -> g
      | None -> invalid_arg ("Plan.workload_by_name: unknown workload " ^ name))

(* ---- interpreter-level specs -------------------------------------------- *)

(* Workloads whose first container write is live in the system state, so a
   corrupted write 0 must surface. Verified by the selfcheck suite itself:
   a regression here turns up as a Missed row. *)
let interp_workloads = [ "scale"; "axpy"; "atax" ]

(* Bit 62 is the top exponent bit: flipping it changes the magnitude of any
   float, including 0.0 — unlike the sign bit, where -0.0 = 0.0 would hide
   the corruption from the comparator. *)
let interp_injections =
  [
    (Interp.Exec.Flip_bit { nth_write = 0; bit = 62 }, Must_semantics);
    (Interp.Exec.Set_nan { nth_write = 0 }, Must_semantics);
    (Interp.Exec.Set_inf { nth_write = 0 }, Must_semantics);
    (Interp.Exec.Shift_index { nth_subset = 0; delta = 1 }, Must_detect);
    (Interp.Exec.Burn_steps { after = 0 }, Must_semantics);
  ]

let slug_of_injection i =
  String.map (fun c -> if c = ' ' then '-' else c) (Interp.Exec.injection_to_string i)

let interp_specs () =
  List.concat_map
    (fun w ->
      List.map
        (fun (inject, expect) ->
          {
            id = Printf.sprintf "interp/%s/%s" w (slug_of_injection inject);
            level = L_interp;
            expect;
            descr =
              Printf.sprintf "%s on %s through the identity transform"
                (Interp.Exec.injection_to_string inject)
                w;
            payload = Interp_fault { workload = w; inject };
          })
        interp_injections)
    interp_workloads

(* ---- transform-level specs ---------------------------------------------- *)

let xform_workloads = [ "jacobi_1d"; "atax"; "gemm"; "copy_chain"; "mvt"; "softmax"; "2mm" ]
let max_per_kind = 6

let base_xforms () = Transforms.Registry.all_correct ()

(* Canonical target selection: index 0 picks the first candidate in
   Mutate's writes-first order, so the seeded damage lands on a write edge
   whenever the site has one — the localizable case. *)
let mutation_seed = 0

(* Probe the (workload, transformation) matrix for sites where each mutation
   class arms, and keep the first [max_per_kind] per kind — the catalog only
   contains faults that are actually seeded, so every spec is a real
   detection obligation. *)
let transform_specs ~seed:_ =
  List.concat_map
    (fun kind ->
      let found = ref 0 in
      List.concat_map
        (fun w ->
          let g = workload_by_name w in
          List.filter_map
            (fun (x : Transforms.Xform.t) ->
              if !found >= max_per_kind then None
              else
                match Mutate.probe ~seed:mutation_seed kind x g with
                | None -> None
                | Some (site, corrupted) ->
                    incr found;
                    Some
                      {
                        id =
                          Printf.sprintf "xform/%s/%s/%s" w x.name (Mutate.kind_to_string kind);
                        level = L_transform;
                        expect = Must_detect;
                        descr =
                          Printf.sprintf "%s seeded into %s on %s (corrupts %s)"
                            (Mutate.kind_to_string kind) x.name w
                            (String.concat "," corrupted);
                        payload =
                          Transform_fault
                            {
                              workload = w;
                              xform = x.name;
                              kind;
                              mutation_seed;
                              site;
                              expected_containers = corrupted;
                            };
                      })
            (base_xforms ()))
        xform_workloads)
    [ Mutate.Subset_shift; Mutate.Drop_memlet; Mutate.Wrong_stride ]

(* ---- MPI-level specs ----------------------------------------------------- *)

(* The fixed scenario (see Selfcheck): scatter + allreduce + bcast + gather
   over 4 ranks = 3 + 6 + 3 + 3 = 15 point-to-point messages, so victims
   0..14 cover every collective. *)
let mpi_ranks = 4
let mpi_payload_len = 8

let mpi_specs ~seed =
  let mk name kind victim persistent expect =
    {
      id = "mpi/" ^ name;
      level = L_mpi;
      expect;
      descr =
        Printf.sprintf "%s message %d (%s)"
          (Mpi_sim.Mpi.fault_kind_to_string kind)
          victim
          (if persistent then "persistent" else "transient");
      payload =
        Mpi_disturbance
          {
            policy = { Mpi_sim.Mpi.kind; victim; persistent; seed };
            ranks = mpi_ranks;
            payload_len = mpi_payload_len;
          };
    }
  in
  [
    mk "drop-transient" Mpi_sim.Mpi.Drop 1 false Must_heal;
    mk "duplicate" Mpi_sim.Mpi.Duplicate 4 false Must_heal;
    mk "reorder" Mpi_sim.Mpi.Reorder 7 false Must_heal;
    mk "corrupt-transient" Mpi_sim.Mpi.Corrupt 10 false Must_heal;
    mk "drop-persistent" Mpi_sim.Mpi.Drop 13 true Must_fault;
    mk "corrupt-persistent" Mpi_sim.Mpi.Corrupt 5 true Must_fault;
  ]

(* ---- network / distributed-service specs ---------------------------------- *)

(* Small workloads keep each chaos probe (one reference campaign + one
   chaotic campaign, each forking per instance) inside the probe deadline. *)
let net_workloads = [ "scale"; "axpy" ]

(* Every spec is Must_heal: whatever the proxy or the worker's death does,
   the supervised campaign must finish with a journal whose instance lines
   are byte-identical to the same-seed [-j 1] run. Transient faults heal by
   retry on the same worker; persistent ones by quarantine and degradation
   to the local pool — both count, and the footer says which happened. *)
let net_specs ~seed =
  let mk name descr ?net ?kill () =
    {
      id = "net/" ^ name;
      level = L_net;
      expect = Must_heal;
      descr;
      payload = Net_disturbance { net; kill_worker_after = kill; workloads = net_workloads };
    }
  in
  [
    mk "refuse-first-connect" "first connect refused at the proxy (transient)"
      ~net:{ Netfault.kind = Refuse; victim_conn = 0; victim_chunk = 0; persistent = false; seed }
      ();
    mk "corrupt-result-transient" "one bit of one worker reply flipped (transient)"
      ~net:{ Netfault.kind = Corrupt; victim_conn = 0; victim_chunk = 1; persistent = false; seed }
      ();
    mk "disconnect-mid-result" "connection dropped at the first worker reply (transient)"
      ~net:
        { Netfault.kind = Disconnect; victim_conn = 0; victim_chunk = 1; persistent = false; seed }
      ();
    mk "stall-persistent" "all traffic black-holed from the first reply on, every connection"
      ~net:{ Netfault.kind = Stall; victim_conn = 0; victim_chunk = 0; persistent = true; seed }
      ();
    mk "kill-worker-mid-campaign" "the only worker SIGKILLed after the first journaled instance"
      ~kill:1 ();
  ]

(* ---- generated-workload specs -------------------------------------------- *)

(* Same probing discipline as [transform_specs], but over an admitted batch
   of generated programs: the generator is a selfcheck subject — known-bad
   mutations seeded into its output must still be detected at the floor.
   Specs reuse the per-kind cap so a big batch cannot flood the catalog. *)
let generated_specs ~seed ~style ~n =
  match Gen.Styles.by_name style with
  | None -> invalid_arg ("Plan.generated_specs: unknown style " ^ style)
  | Some s ->
      let admitted, _ = Gen.Admit.batch ~style:s ~seed ~n () in
      List.concat_map
        (fun kind ->
          let found = ref 0 in
          List.concat_map
            (fun (c : Gen.Generate.t) ->
              let g = c.Gen.Generate.graph in
              List.filter_map
                (fun (x : Transforms.Xform.t) ->
                  if !found >= max_per_kind then None
                  else
                    match Mutate.probe ~seed:mutation_seed kind x g with
                    | None -> None
                    | Some (site, corrupted) ->
                        incr found;
                        Some
                          {
                            id =
                              Printf.sprintf "xform/%s/%s/%s" c.Gen.Generate.name x.name
                                (Mutate.kind_to_string kind);
                            level = L_transform;
                            expect = Must_detect;
                            descr =
                              Printf.sprintf "%s seeded into %s on generated %s (corrupts %s)"
                                (Mutate.kind_to_string kind) x.name c.Gen.Generate.name
                                (String.concat "," corrupted);
                            payload =
                              Transform_fault
                                {
                                  workload = c.Gen.Generate.name;
                                  xform = x.name;
                                  kind;
                                  mutation_seed;
                                  site;
                                  expected_containers = corrupted;
                                };
                          })
                (base_xforms ()))
            admitted)
        [ Mutate.Subset_shift; Mutate.Drop_memlet; Mutate.Wrong_stride ]

let catalog ?level ?generated ~seed () =
  let gen_specs =
    match generated with
    | None -> []
    | Some (style, n) -> generated_specs ~seed ~style ~n
  in
  let all =
    interp_specs () @ transform_specs ~seed @ gen_specs @ mpi_specs ~seed @ net_specs ~seed
  in
  match level with None -> all | Some l -> List.filter (fun s -> s.level = l) all
