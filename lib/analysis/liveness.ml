open Sdfg

(* Backward container liveness over the interstate CFG. The fact is the set
   of containers whose current contents may still be read on some path to
   program exit. Writes never kill: a memlet write covers a subset of the
   container, so the rest survives — the analysis is subset-oblivious and
   conservative. *)

let union a b = List.sort_uniq compare (a @ b)

let lattice =
  { Fixpoint.bottom = []; equal = ( = ); join = union; widen = None }

let solve g =
  let state_reads = Hashtbl.create 16 in
  List.iter
    (fun (sid, st) -> Hashtbl.replace state_reads sid (fst (Defuse.state_accesses st)))
    (Graph.states g);
  Fixpoint.solve ~direction:Fixpoint.Backward ~lattice ~init:[]
    ~transfer:(fun sid live ->
      union (Option.value ~default:[] (Hashtbl.find_opt state_reads sid)) live)
    ~edge:(fun e live -> union (Defuse.interstate_reads g e) live)
    g

(* Dead cross-state writes: transient [c] is written in state [sid], its
   contents are not live when the state completes, and [sid] itself never
   reads [c] (an in-state read could precede the write — subset-oblivious
   ordering makes that indistinguishable, so we stay quiet). Containers never
   read anywhere are {!Defuse}'s finding, not ours. *)
let dead_writes g =
  let sol = solve g in
  let read_somewhere = Defuse.reads g in
  List.concat_map
    (fun (sid, st) ->
      let reads, writes = Defuse.state_accesses st in
      let live_out = Option.value ~default:[] (Fixpoint.entry_fact sol sid) in
      List.filter_map
        (fun c ->
          match Graph.container_opt g c with
          | Some d
            when d.transient
                 && (not (List.mem c live_out))
                 && (not (List.mem c reads))
                 && List.mem c read_somewhere ->
              Some (sid, c)
          | _ -> None)
        (List.sort_uniq compare writes))
    (Graph.states g)
  |> List.sort_uniq compare

(* Transient containers all of whose writes are dead — removable wholesale,
   the first reduction step for corpus minimization. *)
let dead_containers g =
  let dead = dead_writes g in
  let written_states c =
    List.filter_map
      (fun (sid, st) ->
        if List.mem c (snd (Defuse.state_accesses st)) then Some sid else None)
      (Graph.states g)
  in
  List.filter_map
    (fun (c, (d : Graph.datadesc)) ->
      if not d.transient then None
      else
        match written_states c with
        | [] -> None
        | ws when List.for_all (fun sid -> List.mem (sid, c) dead) ws -> Some c
        | _ -> None)
    (Graph.containers g)

let check g =
  List.map
    (fun (sid, c) ->
      let node =
        match Sdfg.State.access_nodes (Graph.state g sid) c with n :: _ -> n | [] -> -1
      in
      Report.make ~pass:Report.Dead_write ~severity:Report.Warning ~state:sid ~node
        ~container:c
        "write is dead: contents are not read by this state or any later state")
    (dead_writes g)
