(* carried dependences count here: both sides see them, so pre-existing ones
   cancel out and only transformation-introduced ones survive the delta *)
let oracle ?symbols g =
  match Oracle.analyze ~carried:true ?symbols g with fs -> fs | exception _ -> []

let verify ?symbols g (x : Transforms.Xform.t) site =
  let g' = Sdfg.Graph.copy g in
  match x.apply g' site with
  | _ ->
      let before = oracle ?symbols g in
      let after = oracle ?symbols g' in
      Some (Report.sort (Report.new_findings ~before ~after))
  | exception Transforms.Xform.Cannot_apply _ -> None
