(* carried dependences count here: both sides see them, so pre-existing ones
   cancel out and only transformation-introduced ones survive the delta *)
let oracle ?symbols g =
  match Oracle.analyze_stats ~carried:true ?symbols g with
  | r -> r
  | exception _ -> ([], Races.stats_zero)

(* Read-coverage of transients is a delta-only signal (see Defuse.check_coverage):
   shipped stencils legitimately read zero-initialized halo cells, so only a
   container that the transformation *newly* flags counts. Diffing by container
   name (not finding text) keeps a pre-existing gap whose witness merely moved
   from polluting the delta. *)
let coverage_delta ?symbols g g' =
  let cov h = match Defuse.check_coverage ?symbols h with fs -> fs | exception _ -> [] in
  let pre = List.map (fun (f : Report.finding) -> f.container) (cov g) in
  List.filter (fun (f : Report.finding) -> not (List.mem f.container pre)) (cov g')

let verify_stats ?symbols g (x : Transforms.Xform.t) site =
  let g' = Sdfg.Graph.copy g in
  match x.apply g' site with
  | _ ->
      let before, sb = oracle ?symbols g in
      let after, sa = oracle ?symbols g' in
      Some
        ( Report.sort (Report.new_findings ~before ~after @ coverage_delta ?symbols g g'),
          Races.stats_add sb sa )
  | exception Transforms.Xform.Cannot_apply _ -> None

let verify ?symbols g x site = Option.map fst (verify_stats ?symbols g x site)
