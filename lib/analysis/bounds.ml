open Sdfg
module Expr = Symbolic.Expr
module Subset = Symbolic.Subset

let concretize_opt env subset =
  match Subset.concretize env subset with
  | c -> Some c
  | exception (Expr.Unbound_symbol _ | Expr.Division_by_zero | Invalid_argument _) -> None

let pp_cranges crs =
  "["
  ^ String.concat ", "
      (List.map
         (fun (c : Subset.crange) ->
           if c.clo = c.chi then string_of_int c.clo
           else if c.cstep = 1 then Printf.sprintf "%d:%d" c.clo c.chi
           else Printf.sprintf "%d:%d:%d" c.clo c.chi c.cstep)
         crs)
  ^ "]"

(* The assumption environment plus one alternate env per non-first interstate
   candidate value (bounded): symbols assigned along different control paths
   get each of their reachable values tried. Loop variables stay free — the
   checker samples their whole range instead of pinning them. *)
let envs_of (ctx : Context.t) =
  let base =
    List.fold_left
      (fun env (v, ns) -> match ns with n :: _ -> Expr.Env.add v n env | [] -> env)
      ctx.env ctx.candidates
  in
  let alts =
    List.concat_map
      (fun (v, ns) ->
        match ns with _ :: rest -> List.map (fun n -> Expr.Env.add v n base) rest | [] -> [])
      ctx.candidates
  in
  let alts = if List.length alts > 15 then List.filteri (fun i _ -> i < 15) alts else alts in
  base :: alts

(* Dependency-order the loop binders: a loop range may reference outer loop
   variables, so repeatedly pull in loops whose ranges are closed under the
   assumptions plus the loops already ordered. Unorderable loops go last —
   if an occurrence needs one, sampling raises [Unresolved]. *)
let order_loops env loops =
  let rec go ordered remaining =
    let known s =
      Expr.Env.mem s env || List.exists (fun (v, _) -> v = s) ordered
    in
    let ready, rest =
      List.partition (fun (_, r) -> List.for_all known (Subset.free_syms [ r ])) remaining
    in
    if ready = [] then ordered @ remaining else go (ordered @ ready) rest
  in
  go [] loops

(* Binding variables of an occurrence, outermost first: recognized loop
   variables (they enclose every state), then the map parameters of the
   scope chain in nesting order — inner binders may shadow outer ones.
   Restricted to what the subset (transitively, through the binder ranges)
   actually mentions. *)
let binders_of ctx env st (o : Access.occ) =
  let scope_binders =
    List.concat_map
      (fun entry ->
        match State.node_opt st entry with
        | Some (Node.Map_entry info) -> List.combine info.params info.ranges
        | _ -> [])
      (List.rev o.scopes)
  in
  let all = ctx.Context.loops @ scope_binders in
  let needed = ref (Subset.free_syms o.subset) in
  let grow () =
    List.iter
      (fun (v, r) ->
        if List.mem v !needed then
          List.iter
            (fun s -> if not (List.mem s !needed) then needed := s :: !needed)
            (Subset.free_syms [ r ]))
      all
  in
  List.iter (fun _ -> grow ()) all;
  let keep = List.filter (fun (v, _) -> List.mem v !needed) in
  order_loops env (keep ctx.Context.loops) @ keep scope_binders

(* Enumerate boundary valuations of the ordered [binders] on top of [env]:
   each binder in turn is bound to the first and last element of its
   concretized range. Binders are processed strictly in order, and a later
   binder may rebind (shadow) an earlier variable of the same name — nested
   tiling reuses tile-variable names, and the inner scope's binding is the
   one the leaf subset sees. A binder whose range is empty under the
   current valuation has zero iterations — that branch accesses nothing and
   is skipped. A binder whose range cannot be resolved makes the whole
   occurrence unresolvable: the checker skips it rather than guess. Returns
   the first valuation on which [leaf] yields a witness. *)
exception Unresolved

let rec sample env binders leaf =
  match binders with
  | [] -> leaf env
  | (v, r) :: rest -> (
      match Subset.concretize_range env r with
      | exception (Expr.Unbound_symbol _ | Expr.Division_by_zero) -> raise Unresolved
      | cr -> (
          match Subset.crange_elements cr with
          | [] -> None (* zero iterations: no accesses on this branch *)
          | els ->
              let first = List.hd els and last = List.nth els (List.length els - 1) in
              let points = List.sort_uniq compare [ first; last ] in
              List.find_map (fun p -> sample (Expr.Env.add v p env) rest leaf) points))

let check_state ctx g sid st =
  let findings = ref [] and reported = ref [] in
  List.iter
    (fun (o : Access.occ) ->
      if not (List.mem (o.container, o.node) !reported) then
        match Graph.container_opt g o.container with
        | Some desc
          when desc.shape <> [] && List.length o.subset = List.length desc.shape -> (
            let binders = binders_of ctx (List.hd (envs_of ctx)) st o in
            let leaf env =
              let dims =
                match List.map (Expr.eval env) desc.shape with
                | d -> Some d
                | exception (Expr.Unbound_symbol _ | Expr.Division_by_zero) -> None
              in
              match (concretize_opt env o.subset, dims) with
              | Some crs, Some dims ->
                  if
                    List.exists2
                      (fun (c : Subset.crange) dim ->
                        Subset.crange_count c > 0
                        && (min c.clo c.chi < 0 || max c.clo c.chi > dim - 1))
                      crs dims
                  then Some (crs, dims)
                  else None
              | _ -> None
            in
            let witness =
              List.find_map
                (fun env -> try sample env binders leaf with Unresolved -> None)
                (envs_of ctx)
            in
            match witness with
            | Some (crs, dims) ->
                reported := (o.container, o.node) :: !reported;
                findings :=
                  Report.make ~pass:Report.Out_of_bounds ~severity:Report.Error ~state:sid
                    ~node:o.node ~container:o.container
                    ~subsets:[ Subset.to_string o.subset; pp_cranges crs ]
                    (Printf.sprintf "access %s reaches %s, outside shape [%s]"
                       (Subset.to_string o.subset) (pp_cranges crs)
                       (String.concat ", " (List.map string_of_int dims)))
                  :: !findings
            | None -> ())
        | _ -> ())
    (Access.of_state g st);
  !findings

let check ?symbols g =
  let ctx = Context.make ?symbols g in
  List.concat_map (fun (sid, st) -> check_state ctx g sid st) (Graph.states g)
