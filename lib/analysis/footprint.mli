(** Symbolic footprint pass of the static oracle.

    Proves, from the fully propagated program summary
    ({!Sdfg.Propagate.summarize}), that some container's read or write
    footprint escapes its declared shape for every admissible symbol value —
    the symbolic complement of the sampling-based {!Bounds} pass. Reports
    only provable escapes; undecidable subsets stay silent. *)

val check : ?symbols:(string * int) list -> Sdfg.Graph.t -> Report.finding list
