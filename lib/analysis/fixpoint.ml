open Sdfg

type direction = Forward | Backward

type 'a lattice = {
  bottom : 'a;
  equal : 'a -> 'a -> bool;
  join : 'a -> 'a -> 'a;
  widen : ('a -> 'a -> 'a) option;
}

type 'a solution = {
  entry : (int * 'a) list;
  exit_ : (int * 'a) list;
  iterations : int;
  converged : bool;
}

let entry_fact sol sid = List.assoc_opt sid sol.entry
let exit_fact sol sid = List.assoc_opt sid sol.exit_

let default_max_passes = 64
let default_widen_after = 8

(* Round-based chaotic iteration in a fixed state order: every state is
   visited once per pass, in ascending id order, until a full pass changes
   nothing. The deterministic schedule makes facts — and therefore findings
   derived from them — byte-identical across reruns and worker counts. *)
let solve ?(direction = Forward) ?(max_passes = default_max_passes)
    ?(widen_after = default_widen_after) ~(lattice : 'a lattice) ~init ~transfer ~edge g =
  let ids = List.sort compare (Graph.state_ids g) in
  let roots =
    match direction with
    | Forward -> [ Graph.start_state g ]
    | Backward ->
        (* every state without outgoing interstate edges terminates the
           program; with none at all (single-state graphs), every state *)
        let sinks = List.filter (fun s -> Graph.out_istate_edges g s = []) ids in
        if sinks = [] then ids else sinks
  in
  let pred_edges sid =
    match direction with
    | Forward -> Graph.in_istate_edges g sid
    | Backward -> Graph.out_istate_edges g sid
  in
  let edge_origin (e : Graph.istate_edge) =
    match direction with Forward -> e.src | Backward -> e.dst
  in
  let entry_t : (int, 'a) Hashtbl.t = Hashtbl.create 16 in
  let exit_t : (int, 'a) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun sid ->
      Hashtbl.replace entry_t sid (if List.mem sid roots then init else lattice.bottom);
      Hashtbl.replace exit_t sid lattice.bottom)
    ids;
  let passes = ref 0 in
  let stable = ref false in
  while (not !stable) && !passes < max_passes do
    incr passes;
    let changed = ref false in
    List.iter
      (fun sid ->
        let incoming =
          List.fold_left
            (fun acc e -> lattice.join acc (edge e (Hashtbl.find exit_t (edge_origin e))))
            (if List.mem sid roots then init else lattice.bottom)
            (pred_edges sid)
        in
        let old_in = Hashtbl.find entry_t sid in
        let new_in =
          match lattice.widen with
          | Some w when !passes > widen_after -> w old_in incoming
          | _ -> incoming
        in
        if not (lattice.equal old_in new_in) then begin
          changed := true;
          Hashtbl.replace entry_t sid new_in
        end;
        let out = transfer sid (Hashtbl.find entry_t sid) in
        if not (lattice.equal (Hashtbl.find exit_t sid) out) then begin
          changed := true;
          Hashtbl.replace exit_t sid out
        end)
      ids;
    if not !changed then stable := true
  done;
  {
    entry = List.map (fun sid -> (sid, Hashtbl.find entry_t sid)) ids;
    exit_ = List.map (fun sid -> (sid, Hashtbl.find exit_t sid)) ids;
    iterations = !passes;
    converged = !stable;
  }
