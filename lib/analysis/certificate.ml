open Symbolic

type side = Read | Write

type entry = { container : string; side : side; pre : Subset.t; post : Subset.t }

type event = string * [ `R | `W | `RW ]

type t = {
  xform : string;
  site : string;
  assumed : (string * (int option * int option)) list;
  entries : entry list;
  order_pre : event list;
  order_post : event list;
}

let side_name = function Read -> "read" | Write -> "write"

let bounds t s =
  match List.assoc_opt s t.assumed with Some b -> b | None -> (None, None)

let events_of c order = List.filter (fun (c', _) -> c' = c) order

let check t =
  let b = bounds t in
  List.for_all (fun e -> Subset.equal ~bounds:b e.pre e.post) t.entries
  && List.for_all
       (fun c -> events_of c t.order_pre = events_of c t.order_post)
       (List.sort_uniq compare (List.map fst (t.order_pre @ t.order_post)))

let pp_bound fmt = function
  | Some lo, Some hi -> Format.fprintf fmt "[%d,%d]" lo hi
  | Some lo, None -> Format.fprintf fmt "[%d,inf)" lo
  | None, Some hi -> Format.fprintf fmt "(-inf,%d]" hi
  | None, None -> Format.pp_print_string fmt "(-inf,inf)"

let event_name = function `R -> "R" | `W -> "W" | `RW -> "RW"

let pp fmt t =
  Format.fprintf fmt "certificate for %s at %s@\n" t.xform t.site;
  List.iter
    (fun (s, b) -> Format.fprintf fmt "  assume %s in %a@\n" s pp_bound b)
    t.assumed;
  List.iter
    (fun e ->
      Format.fprintf fmt "  %s %s: %a = %a@\n" (side_name e.side) e.container
        Subset.pp e.pre Subset.pp e.post)
    t.entries;
  Format.fprintf fmt "  order: %s"
    (String.concat " "
       (List.map (fun (c, ev) -> Printf.sprintf "%s:%s" c (event_name ev)) t.order_pre))

let to_string t = Format.asprintf "%a" pp t
