open Symbolic

type side = Read | Write

type entry = { container : string; side : side; pre : Subset.t; post : Subset.t }

type event = string * [ `R | `W | `RW ]

type order_waiver = {
  w_container : string;
  pre_rw : (Subset.t * Subset.t) option;
  post_rw : (Subset.t * Subset.t) option;
}

type t = {
  xform : string;
  site : string;
  assumed : (string * (int option * int option)) list;
  entries : entry list;
  order_pre : event list;
  order_post : event list;
  waivers : order_waiver list;
}

let side_name = function Read -> "read" | Write -> "write"

let bounds t s =
  match List.assoc_opt s t.assumed with Some b -> b | None -> (None, None)

let events_of c order = List.filter (fun (c', _) -> c' = c) order

(* Write-projection of a container's event sequence: only events with a write
   component. When a waiver reorders reads against provably disjoint writes,
   this is the part of the order that must still agree. *)
let write_events c order = List.filter (fun (c', k) -> c' = c && k <> `R) order

let waiver_ok t w =
  write_events w.w_container t.order_pre = write_events w.w_container t.order_post
  && List.for_all
       (function
         | None -> true
         | Some (reads, writes) -> Deps.disjoint_under ~bounds:(bounds t) reads writes)
       [ w.pre_rw; w.post_rw ]

let check t =
  let b = bounds t in
  let waived = List.map (fun w -> w.w_container) t.waivers in
  List.for_all
    (fun e -> Subset.equal ~bounds:b e.pre e.post || Deps.equal_sets ~bounds:b e.pre e.post)
    t.entries
  && List.for_all
       (fun c -> events_of c t.order_pre = events_of c t.order_post)
       (List.filter
          (fun c -> not (List.mem c waived))
          (List.sort_uniq compare (List.map fst (t.order_pre @ t.order_post))))
  && List.for_all (waiver_ok t) t.waivers

let pp_bound fmt = function
  | Some lo, Some hi -> Format.fprintf fmt "[%d,%d]" lo hi
  | Some lo, None -> Format.fprintf fmt "[%d,inf)" lo
  | None, Some hi -> Format.fprintf fmt "(-inf,%d]" hi
  | None, None -> Format.pp_print_string fmt "(-inf,inf)"

let event_name = function `R -> "R" | `W -> "W" | `RW -> "RW"

let pp fmt t =
  Format.fprintf fmt "certificate for %s at %s@\n" t.xform t.site;
  List.iter
    (fun (s, b) -> Format.fprintf fmt "  assume %s in %a@\n" s pp_bound b)
    t.assumed;
  List.iter
    (fun e ->
      Format.fprintf fmt "  %s %s: %a = %a@\n" (side_name e.side) e.container
        Subset.pp e.pre Subset.pp e.post)
    t.entries;
  List.iter
    (fun w ->
      Format.fprintf fmt "  reorder %s waived: reads disjoint from writes@\n" w.w_container)
    t.waivers;
  Format.fprintf fmt "  order: %s"
    (String.concat " "
       (List.map (fun (c, ev) -> Printf.sprintf "%s:%s" c (event_name ev)) t.order_pre))

let to_string t = Format.asprintf "%a" pp t
