(** Change-set audit: declared Δ_T versus the true pre/post graph diff.

    Cutout extraction (paper Sec. 3 step 2) builds the test subprogram from
    the scope closure of the transformation's declared change set. If the
    recomputed diff ({!Sdfg.Diff.compute}) contains a node outside that
    closure — or a control-flow change in an undeclared state — the
    transformation modified program parts its cutout would not cover, and
    localized testing would silently compare the wrong subprogram. Every
    escape is therefore a definite ([Error]) finding.

    Over-declaration is never flagged: a too-large change set only costs
    cutout size, not soundness. *)

open Sdfg

(** Audit an already-applied transformation: [declared] is what [apply]
    returned, [original]/[transformed] the graphs before and after. *)
val check :
  original:Graph.t -> transformed:Graph.t -> declared:Diff.change_set -> Report.finding list

(** Apply [x] at [site] on a scratch copy and audit the result. [None] when
    the site is stale ([Cannot_apply]). *)
val check_xform :
  Graph.t -> Transforms.Xform.t -> Transforms.Xform.site -> Report.finding list option
