(** Transformation delta verification.

    Runs the full static oracle before and after applying a candidate
    transformation instance to a scratch copy of the program, and reports
    only the findings the transformation {e introduced}. Pre-existing
    findings (same pass, container and state) are not attributed to the
    candidate, so a noisy baseline cannot mask nor fake a regression.

    Returns [None] when the site no longer matches
    ({!Transforms.Xform.Cannot_apply}) — staleness is the pipeline's
    concern, not a static finding. A pass that itself raises is treated as
    producing no findings: the oracle only ever vetoes with evidence. *)

open Sdfg

val verify :
  ?symbols:(string * int) list ->
  Graph.t ->
  Transforms.Xform.t ->
  Transforms.Xform.site ->
  Report.finding list option
