(** Transformation delta verification.

    Runs the full static oracle before and after applying a candidate
    transformation instance to a scratch copy of the program, and reports
    only the findings the transformation {e introduced}. Pre-existing
    findings (same pass, container and state) are not attributed to the
    candidate, so a noisy baseline cannot mask nor fake a regression.

    Returns [None] when the site no longer matches
    ({!Transforms.Xform.Cannot_apply}) — staleness is the pipeline's
    concern, not a static finding. A pass that itself raises is treated as
    producing no findings: the oracle only ever vetoes with evidence. *)

open Sdfg

(** [coverage_delta ?symbols g g'] runs {!Defuse.check_coverage} on both
    programs and keeps only findings for containers flagged in [g'] but not
    in [g]: transients whose read set the transformation pushed outside the
    write set. Diffed by container name, so a pre-existing gap whose witness
    text merely changed does not count as introduced. *)
val coverage_delta :
  ?symbols:(string * int) list -> Graph.t -> Graph.t -> Report.finding list

val verify :
  ?symbols:(string * int) list ->
  Graph.t ->
  Transforms.Xform.t ->
  Transforms.Xform.site ->
  Report.finding list option

(** {!verify} plus the exact-dependence-tier coverage counters summed over
    both oracle runs (pre- and post-transformation). *)
val verify_stats :
  ?symbols:(string * int) list ->
  Graph.t ->
  Transforms.Xform.t ->
  Transforms.Xform.site ->
  (Report.finding list * Races.stats) option
