(** Static parallel-race / loop-carried-dependence detection.

    For every map scope, checks whether the write subset of one parameter
    valuation can overlap the read or write subset of a {e distinct}
    valuation. The second valuation uses fresh primed copies of the map
    parameters ([i] vs [i']); distinctness is the {!Symbolic.Cond.any_ne}
    constraint [i ≠ i' ∨ …], enforced on every sampled valuation pair. A
    symbolic disjointness proof ({!Symbolic.Subset.definitely_disjoint} on
    the primed subsets) short-circuits provably safe pairs; the rest are
    checked on concretized boundary/adjacent/transposed valuation pairs
    under the context's symbol assumptions.

    Sequential map scopes execute in iteration order, so a loop-carried
    dependence is well-defined semantics, not a bug — Gauss–Seidel or
    Floyd–Warshall are built on exactly that. By default sequential scopes
    therefore only report duplicated iteration tuples (the off-by-one
    tiling signature, an error when the scope accumulates through conflict
    resolution). With [~carried:true] cross-valuation write/read overlaps
    in sequential scopes are reported as warnings too — minus those where
    the reading iteration first overwrites the data itself
    (iteration-private buffer reuse). The delta verifier enables this: a
    {e newly introduced} carried dependence is a transformation bug even
    though a pre-existing one is intended behavior. Parallel and GPU
    scopes report every cross-valuation overlap (except commutative
    WCR/WCR pairs) as an error. *)

open Sdfg

val check_state :
  ?carried:bool -> Context.t -> Graph.t -> int -> State.t -> Report.finding list

val check : ?carried:bool -> ?symbols:(string * int) list -> Graph.t -> Report.finding list
