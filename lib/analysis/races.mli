(** Static parallel-race / loop-carried-dependence detection.

    For every map scope, checks whether the write subset of one parameter
    valuation can overlap the read or write subset of a {e distinct}
    valuation. The second valuation uses fresh primed copies of the map
    parameters ([i] vs [i']); distinctness is the {!Symbolic.Cond.any_ne}
    constraint [i ≠ i' ∨ …], enforced on every sampled valuation pair. A
    symbolic disjointness proof ({!Symbolic.Subset.definitely_disjoint} on
    the primed subsets) short-circuits provably safe pairs; the rest are
    checked on concretized boundary/adjacent/transposed valuation pairs
    under the context's symbol assumptions.

    Sequential map scopes execute in iteration order, so a loop-carried
    dependence is well-defined semantics, not a bug — Gauss–Seidel or
    Floyd–Warshall are built on exactly that. By default sequential scopes
    therefore only report duplicated iteration tuples (the off-by-one
    tiling signature, an error when the scope accumulates through conflict
    resolution). With [~carried:true] cross-valuation write/read overlaps
    in sequential scopes are reported as warnings too — minus those where
    the reading iteration first overwrites the data itself
    (iteration-private buffer reuse). The delta verifier enables this: a
    {e newly introduced} carried dependence is a transformation bug even
    though a pre-existing one is intended behavior. Parallel and GPU
    scopes report every cross-valuation overlap (except commutative
    WCR/WCR pairs) as an error.

    Since the exact dependence tier ({!Deps}), every relevant access pair is
    first handed to the Fourier–Motzkin engine: a [Disjoint] proof settles the
    pair without sampling, an [Overlap] witness is reported directly (with the
    solver's valuation in the finding's [dep_witness] metadata, ready to seed a
    directed fuzz probe), and only [Unknown] pairs fall back to the sampled
    valuation search. Per-scope decided/sampled counters ride on every race
    finding's metadata and aggregate into {!stats}. *)

open Sdfg

(** Exact-tier coverage counters. [pairs] relevant access pairs were examined:
    [exact_disjoint] proved disjoint (structural short-circuit or
    Fourier–Motzkin), [exact_overlap] decided racy with a verified witness,
    [sampled] fell back to the sampled valuation search. *)
type stats = { pairs : int; exact_disjoint : int; exact_overlap : int; sampled : int }

val stats_zero : stats
val stats_add : stats -> stats -> stats

(** The metadata entries ([dep_pairs], [dep_decided], [dep_sampled]) attached
    to every race finding of a scope. *)
val stats_meta : stats -> (string * string) list

(** Recover the exact-tier witness valuation (parameters and primed
    parameters) from a race finding's [dep_witness] metadata. *)
val witness_of_finding : Report.finding -> (string * int) list option

(** [exact] (default [true]) controls the exact dependence tier; disabling it
    restores the pure sampled behavior (used by benchmarks and consistency
    tests). *)
val check_state_stats :
  ?carried:bool ->
  ?exact:bool ->
  Context.t ->
  Graph.t ->
  int ->
  State.t ->
  Report.finding list * stats

val check_state :
  ?carried:bool -> Context.t -> Graph.t -> int -> State.t -> Report.finding list

val check_stats :
  ?carried:bool ->
  ?exact:bool ->
  ?symbols:(string * int) list ->
  Graph.t ->
  Report.finding list * stats

val check : ?carried:bool -> ?symbols:(string * int) list -> Graph.t -> Report.finding list
