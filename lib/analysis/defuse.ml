open Sdfg

(* Containers accessed by one edge, access-node-centric: reads at Access
   sources, writes at Access destinations (dst_memlet if present, else the
   forward memlet); a WCR write also reads the previous contents. This is
   the same classification the cutout extractor uses, so [reads] matches
   its program-read set exactly. *)
let edge_accesses st (e : State.edge) =
  let reads = ref [] and writes = ref [] in
  (match (e.memlet, State.node_opt st e.src) with
  | Some (m : Memlet.t), Some (Node.Access _) -> reads := m.data :: !reads
  | _ -> ());
  (match State.node_opt st e.dst with
  | Some (Node.Access _) -> (
      match (match e.dst_memlet with Some dm -> Some dm | None -> e.memlet) with
      | Some (m : Memlet.t) ->
          writes := m.data :: !writes;
          if m.wcr <> None then reads := m.data :: !reads
      | None -> ())
  | _ -> ());
  (!reads, !writes)

let interstate_reads g (e : Graph.istate_edge) =
  let syms =
    Symbolic.Cond.free_syms e.cond
    @ List.concat_map (fun (_, rhs) -> Symbolic.Expr.free_syms rhs) e.assigns
  in
  List.filter
    (fun s ->
      match Graph.container_opt g s with Some d when d.shape = [] -> true | _ -> false)
    syms

let state_accesses st =
  List.fold_left
    (fun (rs, ws) e ->
      let r, w = edge_accesses st e in
      (r @ rs, w @ ws))
    ([], []) (State.edges st)

let reads g =
  List.concat_map (fun (_, st) -> fst (state_accesses st)) (Graph.states g)
  @ List.concat_map (interstate_reads g) (Graph.istate_edges g)
  |> List.sort_uniq compare

let writes g =
  List.concat_map (fun (_, st) -> snd (state_accesses st)) (Graph.states g)
  |> List.sort_uniq compare

let check g =
  let rs = reads g and ws = writes g in
  List.filter_map
    (fun (c, (d : Graph.datadesc)) ->
      if not d.transient then None
      else if List.mem c rs && not (List.mem c ws) then
        Some
          (Report.make ~pass:Report.Use_before_def ~severity:Report.Error ~container:c
             "transient container is read but never written (uninitialized data)")
      else if List.mem c ws && not (List.mem c rs) then
        Some
          (Report.make ~pass:Report.Dead_write ~severity:Report.Warning ~container:c
             "transient container is written but never read")
      else None)
    (Graph.containers g)
