open Sdfg

(* Containers accessed by one edge, access-node-centric: reads at Access
   sources, writes at Access destinations (dst_memlet if present, else the
   forward memlet); a WCR write also reads the previous contents. This is
   the same classification the cutout extractor uses, so [reads] matches
   its program-read set exactly. *)
let edge_accesses st (e : State.edge) =
  let reads = ref [] and writes = ref [] in
  (match (e.memlet, State.node_opt st e.src) with
  | Some (m : Memlet.t), Some (Node.Access _) -> reads := m.data :: !reads
  | _ -> ());
  (match State.node_opt st e.dst with
  | Some (Node.Access _) -> (
      match (match e.dst_memlet with Some dm -> Some dm | None -> e.memlet) with
      | Some (m : Memlet.t) ->
          writes := m.data :: !writes;
          if m.wcr <> None then reads := m.data :: !reads
      | None -> ())
  | _ -> ());
  (!reads, !writes)

let interstate_reads g (e : Graph.istate_edge) =
  let syms =
    Symbolic.Cond.free_syms e.cond
    @ List.concat_map (fun (_, rhs) -> Symbolic.Expr.free_syms rhs) e.assigns
  in
  List.filter
    (fun s ->
      match Graph.container_opt g s with Some d when d.shape = [] -> true | _ -> false)
    syms

let state_accesses st =
  List.fold_left
    (fun (rs, ws) e ->
      let r, w = edge_accesses st e in
      (r @ rs, w @ ws))
    ([], []) (State.edges st)

let reads g =
  List.concat_map (fun (_, st) -> fst (state_accesses st)) (Graph.states g)
  @ List.concat_map (interstate_reads g) (Graph.istate_edges g)
  |> List.sort_uniq compare

let writes g =
  List.concat_map (fun (_, st) -> snd (state_accesses st)) (Graph.states g)
  |> List.sort_uniq compare

(* Subset-level refinement of the use-before-def check: a transient with some
   read element provably outside the propagated write set is read
   uninitialized — the signature of a write set shrunk by a widened stride or
   a shifted subset, invisible to the name-level check above.

   Reads are checked per access, not as the whole-container union: a single
   affine access widens exactly through its scope chain, where the union of
   several offset accesses (an enclosing box) would over-approximate and
   fabricate gaps. WCR accumulations are exempt on the read side — they read
   exactly the elements they write. Every declared symbol is pinned to the
   reference concretization (the caller's, defaulting to size 8), so the
   witness valuation replays directly and degenerate-size propagation
   artifacts cannot report; the witness element must additionally be an
   in-shape index of the container under that valuation. *)
let coverage_default_size = 8

let check_coverage ?(symbols = []) g =
  let declared =
    let shape_syms =
      List.concat_map
        (fun (_, (d : Graph.datadesc)) -> List.concat_map Symbolic.Expr.free_syms d.shape)
        (Graph.containers g)
    in
    List.sort_uniq compare (Graph.symbols g @ shape_syms @ List.map fst symbols)
  in
  let valuation =
    List.map
      (fun s ->
        ( s,
          match List.assoc_opt s symbols with
          | Some v -> v
          | None -> coverage_default_size ))
      declared
  in
  let bounds s = if List.mem s declared then (Some 1, None) else (None, None) in
  match Propagate.summarize ~bounds g with
  | exception _ -> []
  | su ->
      let read_accesses c =
        List.concat_map
          (fun (_, st) ->
            List.filter_map
              (fun (a : Propagate.access) ->
                if a.Propagate.container = c && a.Propagate.kind = Propagate.Read then
                  Some a.Propagate.subset
                else None)
              (Propagate.state_accesses g st))
          (Graph.states g)
      in
      let env = Symbolic.Expr.Env.of_list valuation in
      let in_shape (d : Graph.datadesc) el =
        List.length el = List.length d.shape
        && List.for_all2
             (fun e dim ->
               match Symbolic.Expr.eval env dim with
               | n -> e >= 0 && e < n
               | exception _ -> false)
             el d.shape
      in
      let param_only sub =
        List.for_all (fun s -> List.mem s declared) (Symbolic.Subset.free_syms sub)
      in
      List.filter_map
        (fun (c, (d : Graph.datadesc)) ->
          if not d.transient then None
          else
            match List.assoc_opt c su.Propagate.writes with
            | Some w when param_only w ->
                List.find_map
                  (fun r ->
                    if not (param_only r) then None
                    else
                      match Deps.uncovered ~bounds ~symbols:valuation r w with
                      | Some (va, el) when in_shape d el ->
                          Some
                            (Report.make ~pass:Report.Use_before_def
                               ~severity:Report.Error ~container:c
                               (Printf.sprintf
                                  "transient read %s exceeds the write set %s: element \
                                   [%s] is read but never written under {%s}"
                                  (Symbolic.Subset.to_string r)
                                  (Symbolic.Subset.to_string w)
                                  (String.concat "," (List.map string_of_int el))
                                  (String.concat ", "
                                     (List.map
                                        (fun (s, v) -> Printf.sprintf "%s=%d" s v)
                                        va))))
                      | _ -> None)
                  (read_accesses c)
            | _ -> None)
        (Graph.containers g)

let check g =
  let rs = reads g and ws = writes g in
  List.filter_map
    (fun (c, (d : Graph.datadesc)) ->
      if not d.transient then None
      else if List.mem c rs && not (List.mem c ws) then
        Some
          (Report.make ~pass:Report.Use_before_def ~severity:Report.Error ~container:c
             "transient container is read but never written (uninitialized data)")
      else if List.mem c ws && not (List.mem c rs) then
        Some
          (Report.make ~pass:Report.Dead_write ~severity:Report.Warning ~container:c
             "transient container is written but never read")
      else None)
    (Graph.containers g)
