open Sdfg

(* The cutout the pipeline extracts for a transformation covers the scope
   closure of the declared change set (and the declared states wholesale).
   A true diff escaping that closure means the transformation modified
   program parts the cutout does not cover — localized testing would compare
   the wrong subprogram, a soundness bug in extraction, not merely a sloppy
   declaration. *)

let node_label g sid n =
  match Graph.state_opt g sid with
  | None -> Printf.sprintf "node %d" n
  | Some st -> (
      match State.node_opt st n with
      | Some nd -> Node.label nd
      | None -> Printf.sprintf "node %d" n)

let check ~original ~transformed ~(declared : Diff.change_set) =
  let true_cs = Diff.compute ~original ~transformed in
  let closure_cache = Hashtbl.create 4 in
  let closure_for sid =
    match Hashtbl.find_opt closure_cache sid with
    | Some c -> c
    | None ->
        let seeds =
          List.filter_map
            (fun (s, n) -> if s = sid then Some n else None)
            declared.Diff.nodes
        in
        let cl g =
          match Graph.state_opt g sid with
          | None -> []
          | Some st -> State.scope_closure st seeds
        in
        let c = List.sort_uniq compare (cl original @ cl transformed) in
        Hashtbl.replace closure_cache sid c;
        c
  in
  let node_findings =
    List.filter_map
      (fun (sid, n) ->
        if List.mem sid declared.Diff.states || List.mem n (closure_for sid) then None
        else
          Some
            (Report.make ~pass:Report.Change_set ~severity:Report.Error ~state:sid ~node:n
               ~container:(node_label original sid n)
               (Printf.sprintf
                  "changed node %d.%d is outside the scope closure of the declared change set"
                  sid n)))
      true_cs.Diff.nodes
  in
  let state_findings =
    List.filter_map
      (fun sid ->
        if List.mem sid declared.Diff.states then None
        else
          Some
            (Report.make ~pass:Report.Change_set ~severity:Report.Error ~state:sid
               ~container:"<control-flow>"
               (Printf.sprintf
                  "state %d's control flow changed but the state is not in the declared change set"
                  sid)))
      true_cs.Diff.states
  in
  Report.sort (node_findings @ state_findings)

let check_xform g (x : Transforms.Xform.t) site =
  let g' = Graph.copy g in
  match x.apply g' site with
  | exception Transforms.Xform.Cannot_apply _ -> None
  | declared -> Some (check ~original:g ~transformed:g' ~declared)
