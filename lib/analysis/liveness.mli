(** Interstate container liveness (backward dataflow).

    {!Defuse} only sees whole-program read/write sets, so a transient that is
    read in an {e earlier} state but overwritten pointlessly in a later one
    looks healthy to it. This pass runs the {!Fixpoint} solver backward over
    the interstate CFG with a live-container-set domain and reports writes
    whose contents can never be observed afterwards. Writes never kill
    (memlets cover subsets), so the analysis is conservative: a reported dead
    write is dead on every path.

    [dead_containers] lists transients all of whose writes are dead — they
    can be removed wholesale, which is the first reduction step for the
    corpus-minimization roadmap item. *)

open Sdfg

(** Per-state live-container solution; for a state [s], the solver's [entry]
    fact is the live-out set of [s] (backward direction). *)
val solve : Graph.t -> string list Fixpoint.solution

(** [(state, container)] pairs whose write is provably dead. *)
val dead_writes : Graph.t -> (int * string) list

(** Transient containers with at least one write, all of them dead. *)
val dead_containers : Graph.t -> string list

val check : Graph.t -> Report.finding list
