type pass = Race | Out_of_bounds | Use_before_def | Dead_write | Footprint | Change_set
type severity = Error | Warning

type finding = {
  pass : pass;
  severity : severity;
  state : int;
  node : int;
  container : string;
  subsets : string list;
  detail : string;
  meta : (string * string) list;
}

let make ~pass ~severity ?(state = -1) ?(node = -1) ~container ?(subsets = []) ?(meta = [])
    detail =
  { pass; severity; state; node; container; subsets; detail; meta }

let with_meta kvs f = { f with meta = f.meta @ kvs }
let meta_find key f = List.assoc_opt key f.meta

let pass_name = function
  | Race -> "race"
  | Out_of_bounds -> "out-of-bounds"
  | Use_before_def -> "use-before-def"
  | Dead_write -> "dead-write"
  | Footprint -> "footprint"
  | Change_set -> "change-set"

let severity_name = function Error -> "error" | Warning -> "warning"

let pp fmt f =
  Format.fprintf fmt "[%s] %s: %s" (severity_name f.severity) (pass_name f.pass) f.container;
  if f.state >= 0 then Format.fprintf fmt " (state %d" f.state
  else Format.pp_print_string fmt " (program";
  if f.node >= 0 then Format.fprintf fmt ", node %d" f.node;
  Format.pp_print_string fmt ")";
  if f.subsets <> [] then Format.fprintf fmt " %s" (String.concat " vs " f.subsets);
  if f.detail <> "" then Format.fprintf fmt ": %s" f.detail

let to_string f = Format.asprintf "%a" pp f

(* Total order: every field participates, so equal keys imply equal findings
   and the sorted output is byte-identical across reruns and worker counts
   regardless of production order. *)
let pass_rank = function
  | Race -> 0
  | Out_of_bounds -> 1
  | Use_before_def -> 2
  | Dead_write -> 3
  | Footprint -> 4
  | Change_set -> 5

let compare_findings a b =
  compare
    (a.severity, a.state, a.container, a.node, pass_rank a.pass, a.subsets, a.detail, a.meta)
    (b.severity, b.state, b.container, b.node, pass_rank b.pass, b.subsets, b.detail, b.meta)

let sort fs = List.sort_uniq compare_findings fs

let fingerprint f = Printf.sprintf "%s|%s|%d" (pass_name f.pass) f.container f.state

let new_findings ~before ~after =
  let seen = List.map fingerprint before in
  List.filter (fun f -> not (List.mem (fingerprint f) seen)) after
