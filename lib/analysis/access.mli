(** Leaf memlet occurrences: the points where data is actually consumed or
    produced (tasklet and library connectors, copy-edge endpoints) — as
    opposed to the widened summary memlets routed along scope boundaries.
    Each occurrence carries its innermost-first scope chain so callers can
    widen it over any suffix of enclosing map scopes. *)

open Sdfg

type kind = Read | Write of Memlet.wcr option

type occ = {
  node : int;  (** the consuming/producing leaf node *)
  edge : int;
  container : string;
  subset : Symbolic.Subset.t;
  kind : kind;
  scopes : int list;  (** enclosing map-entry ids, innermost first *)
}

val is_write : occ -> bool

(** All leaf occurrences of one state. *)
val of_state : Graph.t -> State.t -> occ list

(** Widen a subset over a chain of map-entry scopes (innermost first),
    folding each scope's parameters out via memlet propagation. *)
val widen_through : State.t -> int list -> Symbolic.Subset.t -> Symbolic.Subset.t

(** Occurrences strictly inside the scope of [entry], with their subsets
    widened over every scope {e between} the occurrence and [entry]
    (exclusive) — leaving [entry]'s own parameters free. *)
val in_scope : Graph.t -> State.t -> entry:int -> occ list
