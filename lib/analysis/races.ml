open Sdfg
module Expr = Symbolic.Expr
module Subset = Symbolic.Subset
module Cond = Symbolic.Cond

(* A primed copy of a parameter name, fresh w.r.t. [taken]. *)
let prime taken p =
  let rec go q = if List.mem q taken then go (q ^ "'") else q in
  go (p ^ "'")

let pp_cranges crs =
  "["
  ^ String.concat ", "
      (List.map
         (fun (c : Subset.crange) ->
           if c.clo = c.chi then string_of_int c.clo
           else if c.cstep = 1 then Printf.sprintf "%d:%d" c.clo c.chi
           else Printf.sprintf "%d:%d:%d" c.clo c.chi c.cstep)
         crs)
  ^ "]"

let pp_valuation params rho =
  String.concat ", " (List.map2 (fun p v -> Printf.sprintf "%s=%d" p v) params rho)

let crange_at (c : Subset.crange) i = c.clo + (i * c.cstep)

(* Boundary-biased index pairs along one parameter: first/second, around the
   middle, last two, and the two extremes. These catch off-by-one overlaps
   (adjacent valuations) and whole-range aliasing. *)
let index_pairs count =
  List.filter
    (fun (a, b) -> a >= 0 && b >= 0 && a < count && b < count && a <> b)
    [ (0, 1); ((count / 2) - 1, count / 2); (count - 2, count - 1); (0, count - 1) ]
  |> List.sort_uniq compare

(* Sampled pairs of distinct valuations over [params]/[cranges]. *)
let valuation_pairs params cranges =
  let counts = List.map Subset.crange_count cranges in
  if List.exists (fun c -> c <= 0) counts then []
  else
    let value k i = crange_at (List.nth cranges k) i in
    let base corner =
      List.mapi (fun k _ -> value k (if corner = 0 then 0 else List.nth counts k - 1)) params
    in
    let n = List.length params in
    let with_nth l k v = List.mapi (fun i x -> if i = k then v else x) l in
    let pairs = ref [] in
    (* both orders: write-at-rho vs read-at-rho' is not symmetric *)
    let add a b = if a <> b then pairs := (a, b) :: (b, a) :: !pairs in
    (* vary one parameter at a time from both corners *)
    List.iteri
      (fun k _ ->
        List.iter
          (fun (ia, ib) ->
            List.iter
              (fun corner ->
                let b = base corner in
                add (with_nth b k (value k ia)) (with_nth b k (value k ib)))
              [ 0; 1 ])
          (index_pairs (List.nth counts k)))
      params;
    (* transposed pairs: catch A[i,j] vs A[j,i] style aliasing *)
    if n >= 2 then begin
      let b = base 0 in
      let x = value 0 0 and y = value 1 (List.nth counts 1 - 1) in
      add (with_nth (with_nth b 0 x) 1 y) (with_nth (with_nth b 0 y) 1 x)
    end;
    (* small iteration spaces: enumerate everything *)
    let total = List.fold_left ( * ) 1 counts in
    if total <= 9 then begin
      let rec enum k acc =
        if k = n then [ List.rev acc ]
        else
          List.concat_map (fun i -> enum (k + 1) (value k i :: acc)) (List.init (List.nth counts k) Fun.id)
      in
      let all = enum 0 [] in
      List.iter (fun a -> List.iter (fun b -> add a b) all) all
    end;
    List.sort_uniq compare !pairs

let concretize_opt env subset =
  match Subset.concretize env subset with
  | c -> Some c
  | exception (Expr.Unbound_symbol _ | Expr.Division_by_zero | Invalid_argument _) -> None

let topo_positions st =
  let tbl = Hashtbl.create 32 in
  List.iteri (fun i n -> Hashtbl.replace tbl n i) (State.topological st);
  fun n -> Option.value ~default:max_int (Hashtbl.find_opt tbl n)

(* Does valuation [rho'] overwrite (cover) its own access [a] with an
   earlier or simultaneous write of the same container? Then no data flows
   into [a] from other iterations: the region is iteration-private
   (scope-local buffer reuse), not a carried dependence. *)
let self_covered pos env occs (a : Access.occ) =
  match concretize_opt env a.subset with
  | None -> false
  | Some ca ->
      List.exists
        (fun (w2 : Access.occ) ->
          Access.is_write w2
          && w2.container = a.container
          && w2.edge <> a.edge
          && pos w2.node <= pos a.node
          && match concretize_opt env w2.subset with
             | Some cw2 -> Subset.covers cw2 ca
             | None -> false)
        occs

let is_parallel = function Node.Sequential -> false | Node.Parallel | Node.Gpu_device -> true

(* Base environment for analyzing scope [entry]: the context sample
   environment plus every *other* map parameter of the state bound to its
   range start (outer scopes first, so tile variables resolve). The
   analyzed scope's own parameters stay free — they take valuations. *)
let scope_env ctx st ~entry ~(info : Node.map_info) =
  let depth n =
    let rec go n d = match State.scope_of st n with None -> d | Some e -> go e (d + 1) in
    go n 0
  in
  let entries =
    List.filter_map
      (fun (nid, n) ->
        match n with
        | Node.Map_entry i when nid <> entry -> Some (depth nid, nid, i)
        | _ -> None)
      (State.nodes st)
    |> List.sort compare
  in
  List.fold_left
    (fun env (_, _, (i : Node.map_info)) ->
      List.fold_left2
        (fun env p (r : Subset.range) ->
          if List.mem p info.params || Expr.Env.mem p env then env
          else
            match Expr.eval env r.lo with
            | v -> Expr.Env.add p v env
            | exception (Expr.Unbound_symbol _ | Expr.Division_by_zero) -> env)
        env i.params i.ranges)
    (Context.sample_env ctx) entries

(* Overlapping inner-scope iteration ranges across distinct outer
   valuations: the same iteration tuple executes more than once — the
   off-by-one tiling bug. Duplicated accumulations (WCR inside) change
   results even sequentially; otherwise it is only redundant work unless
   the scope is parallel. *)
let duplicated_iterations g ctx st ~entry ~(info : Node.map_info) ~sid env0 pairs =
  let findings = ref [] in
  List.iter
    (fun inner ->
      match State.node_opt st inner with
      | Some (Node.Map_entry iinfo)
        when State.scope_of st inner = Some entry
             && List.exists
                  (fun (r : Subset.range) ->
                    List.exists (fun s -> List.mem s info.params) (Subset.free_syms [ r ]))
                  iinfo.ranges ->
          let inner_occs = Access.in_scope g st ~entry:inner in
          let wcr_inside =
            List.exists
              (fun (o : Access.occ) ->
                match o.kind with Access.Write (Some _) -> true | _ -> false)
              inner_occs
          in
          let severity =
            if wcr_inside || is_parallel info.schedule then Report.Error else Report.Warning
          in
          let witness =
            List.find_map
              (fun (rho, rho') ->
                let env_at r =
                  List.fold_left2 (fun e p v -> Expr.Env.add p v e) env0 info.params r
                in
                let widened = Context.widen_loops ctx iinfo.ranges in
                match (concretize_opt (env_at rho) widened, concretize_opt (env_at rho') widened) with
                | Some ca, Some cb
                  when List.for_all2
                         (fun ra rb ->
                           List.exists
                             (fun x -> List.mem x (Subset.crange_elements rb))
                             (Subset.crange_elements ra))
                         ca cb ->
                    Some (rho, rho', ca, cb)
                | _ -> None)
              pairs
          in
          (match witness with
          | Some (rho, rho', ca, cb) ->
              let container =
                match List.find_opt Access.is_write inner_occs with
                | Some o -> o.container
                | None -> iinfo.label
              in
              findings :=
                Report.make ~pass:Report.Race ~severity ~state:sid ~node:entry ~container
                  ~subsets:[ pp_cranges ca; pp_cranges cb ]
                  (Printf.sprintf
                     "inner scope '%s' iterates %s at (%s) and %s at (%s): duplicated iterations"
                     iinfo.label (pp_cranges ca)
                     (pp_valuation info.params rho)
                     (pp_cranges cb)
                     (pp_valuation info.params rho'))
                :: !findings
          | None -> ())
      | _ -> ())
    (State.scope_nodes st entry);
  !findings

type stats = { pairs : int; exact_disjoint : int; exact_overlap : int; sampled : int }

let stats_zero = { pairs = 0; exact_disjoint = 0; exact_overlap = 0; sampled = 0 }

let stats_add a b =
  { pairs = a.pairs + b.pairs;
    exact_disjoint = a.exact_disjoint + b.exact_disjoint;
    exact_overlap = a.exact_overlap + b.exact_overlap;
    sampled = a.sampled + b.sampled }

let stats_meta s =
  [ ("dep_pairs", string_of_int s.pairs);
    ("dep_decided", string_of_int (s.exact_disjoint + s.exact_overlap));
    ("dep_sampled", string_of_int s.sampled) ]

let pp_model model =
  String.concat "," (List.map (fun (p, v) -> Printf.sprintf "%s=%d" p v) model)

let witness_of_finding (f : Report.finding) =
  match Report.meta_find "dep_witness" f with
  | None -> None
  | Some s -> (
      try
        Some
          (List.map
             (fun kv ->
               match String.index_opt kv '=' with
               | Some i ->
                   ( String.sub kv 0 i,
                     int_of_string (String.sub kv (i + 1) (String.length kv - i - 1)) )
               | None -> raise Exit)
             (String.split_on_char ',' s))
      with _ -> None)

let check_scope ?(carried = false) ?(exact = true) ctx g sid st ~entry ~(info : Node.map_info)
    =
  if info.params = [] then ([], stats_zero)
  else
    let env0 = scope_env ctx st ~entry ~info in
    match concretize_opt env0 (Context.widen_loops ctx info.ranges) with
    | None -> ([], stats_zero)
    | Some cranges ->
        let pairs = valuation_pairs info.params cranges in
        if pairs = [] then ([], stats_zero)
        else begin
          let occs = Access.in_scope g st ~entry in
          let taken =
            info.params
            @ List.concat_map (fun (o : Access.occ) -> Subset.free_syms o.subset) occs
          in
          let primed = List.map (fun p -> (p, prime taken p)) info.params in
          let distinct =
            Cond.any_ne (List.map (fun (p, p') -> (Expr.Sym p, Expr.Sym p')) primed)
          in
          let pos = topo_positions st in
          let env_pair rho rho' =
            let env = List.fold_left2 (fun e p v -> Expr.Env.add p v e) env0 info.params rho in
            List.fold_left2 (fun e (_, p') v -> Expr.Env.add p' v e) env primed rho'
          in
          let env_at rho =
            List.fold_left2 (fun e p v -> Expr.Env.add p v e) env0 info.params rho
          in
          let findings = ref (duplicated_iterations g ctx st ~entry ~info ~sid env0 pairs) in
          let stats = ref stats_zero in
          let bump f = stats := f !stats in
          let reported = ref [] in
          let writes = List.filter Access.is_write occs in
          let report_race (w : Access.occ) (a : Access.occ) ~rho ~rho' ~cw ~ca ~meta =
            reported := (entry, w.container) :: !reported;
            let what =
              match a.kind with Access.Read -> "read" | Access.Write _ -> "write"
            in
            let severity =
              if is_parallel info.schedule then Report.Error else Report.Warning
            in
            let concrete =
              match (cw, ca) with
              | Some cw, Some ca -> Printf.sprintf ": %s vs %s" (pp_cranges cw) (pp_cranges ca)
              | _ -> ""
            in
            findings :=
              Report.make ~pass:Report.Race ~severity ~state:sid ~node:entry
                ~container:w.container
                ~subsets:[ Subset.to_string w.subset; Subset.to_string a.subset ]
                ~meta
                (Printf.sprintf
                   "write %s at (%s) overlaps %s %s at distinct valuation (%s)%s"
                   (Subset.to_string w.subset)
                   (pp_valuation info.params rho)
                   what
                   (Subset.to_string a.subset)
                   (pp_valuation info.params rho')
                   concrete)
              :: !findings
          in
          (* the sampled fallback: boundary/adjacent/transposed valuation
             pairs, exactly as before the exact tier existed *)
          let sampled_search (w : Access.occ) (a : Access.occ) a_primed =
            let witness =
              List.find_map
                (fun (rho, rho') ->
                  let env = env_pair rho rho' in
                  if not (Cond.eval env distinct) then None
                  else
                    match (concretize_opt env w.subset, concretize_opt env a_primed) with
                    | Some cw, Some ca when Subset.overlaps cw ca ->
                        if
                          (not (is_parallel info.schedule))
                          && self_covered pos (env_at rho') occs a
                        then None
                        else Some (rho, rho', cw, ca)
                    | _ -> None)
                pairs
            in
            match witness with
            | Some (rho, rho', cw, ca) ->
                report_race w a ~rho ~rho' ~cw:(Some cw) ~ca:(Some ca) ~meta:[]
            | None -> ()
          in
          List.iter
            (fun (w : Access.occ) ->
              List.iter
                (fun (a : Access.occ) ->
                  if
                    a.container = w.container
                    && not (List.mem (entry, w.container) !reported)
                    &&
                    (* pair relevance: commutative WCR/WCR accumulation is
                       safe; sequential plain write/write is deterministic *)
                    (match (w.kind, a.kind) with
                    | Access.Write (Some _), Access.Write (Some _) -> false
                    | Access.Write _, Access.Write _ when w.edge = a.edge && not (is_parallel info.schedule) -> false
                    | Access.Write _, Access.Write _ -> is_parallel info.schedule
                    | Access.Write _, Access.Read -> carried || is_parallel info.schedule
                    | Access.Read, _ -> false)
                  then begin
                    bump (fun s -> { s with pairs = s.pairs + 1 });
                    let a_primed = Subset.rename_syms primed a.subset in
                    if Subset.definitely_disjoint w.subset a_primed then
                      bump (fun s -> { s with exact_disjoint = s.exact_disjoint + 1 })
                    else
                      let verdict =
                        if not exact then Deps.Unknown
                        else
                          Deps.overlap ~env:env0 ~bounds:(Context.bounds_fn ctx)
                            ~params:(List.combine info.params cranges)
                            ~primed ~write:w.subset ~access:a_primed
                      in
                      match verdict with
                      | Deps.Disjoint ->
                          bump (fun s -> { s with exact_disjoint = s.exact_disjoint + 1 })
                      | Deps.Overlap model ->
                          let rho = List.map (fun p -> List.assoc p model) info.params in
                          let rho' =
                            List.map (fun (_, p') -> List.assoc p' model) primed
                          in
                          if
                            (not (is_parallel info.schedule))
                            && self_covered pos (env_at rho') occs a
                          then begin
                            (* iteration-private buffer reuse: the exact
                               witness is not a carried dependence; keep
                               parity with the sampled tier's filter *)
                            bump (fun s -> { s with sampled = s.sampled + 1 });
                            sampled_search w a a_primed
                          end
                          else begin
                            bump (fun s -> { s with exact_overlap = s.exact_overlap + 1 });
                            let env = env_pair rho rho' in
                            report_race w a ~rho ~rho'
                              ~cw:(concretize_opt env w.subset)
                              ~ca:(concretize_opt env a_primed)
                              ~meta:[ ("dep_witness", pp_model model) ]
                          end
                      | Deps.Unknown ->
                          bump (fun s -> { s with sampled = s.sampled + 1 });
                          sampled_search w a a_primed
                  end)
                occs)
            writes;
          let meta = stats_meta !stats in
          (List.map (Report.with_meta meta) !findings, !stats)
        end

let check_state_stats ?carried ?exact ctx g sid st =
  List.fold_left
    (fun (fs, st_acc) (nid, n) ->
      match n with
      | Node.Map_entry info ->
          let fs', s = check_scope ?carried ?exact ctx g sid st ~entry:nid ~info in
          (fs @ fs', stats_add st_acc s)
      | _ -> (fs, st_acc))
    ([], stats_zero) (State.nodes st)

let check_state ?carried ctx g sid st = fst (check_state_stats ?carried ctx g sid st)

let check_stats ?carried ?exact ?symbols g =
  let ctx = Context.make ?symbols g in
  List.fold_left
    (fun (fs, st_acc) (sid, st) ->
      let fs', s = check_state_stats ?carried ?exact ctx g sid st in
      (fs @ fs', stats_add st_acc s))
    ([], stats_zero) (Graph.states g)

let check ?carried ?symbols g = fst (check_stats ?carried ?symbols g)
