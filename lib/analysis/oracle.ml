let analyze ?carried ?symbols g =
  (* interval facts sharpen the sampling context: a symbol the fixpoint
     bounds to a concrete range contributes its endpoints as candidate
     values for the per-state checks *)
  let facts = try Intervals.facts ?symbols g with _ -> [] in
  let ctx = Context.make ?symbols ~facts:(Intervals.concrete_bounds ?symbols g facts) g in
  let per_state =
    List.concat_map
      (fun (sid, st) ->
        Races.check_state ?carried ctx g sid st @ Bounds.check_state ctx g sid st)
      (Sdfg.Graph.states g)
  in
  let interstate =
    try Liveness.check g @ Reachdef.check g with _ -> []
  in
  Report.sort (per_state @ Defuse.check g @ interstate @ Footprint.check ?symbols g)
