let analyze ?carried ?symbols g =
  let ctx = Context.make ?symbols g in
  let per_state =
    List.concat_map
      (fun (sid, st) ->
        Races.check_state ?carried ctx g sid st @ Bounds.check_state ctx g sid st)
      (Sdfg.Graph.states g)
  in
  Report.sort (per_state @ Defuse.check g @ Footprint.check ?symbols g)
