let analyze_stats ?carried ?symbols g =
  (* interval facts sharpen the sampling context: a symbol the fixpoint
     bounds to a concrete range contributes its endpoints as candidate
     values for the per-state checks — and its interval enters the exact
     dependence tier as constraints *)
  let facts = try Intervals.facts ?symbols g with _ -> [] in
  let ctx = Context.make ?symbols ~facts:(Intervals.concrete_bounds ?symbols g facts) g in
  let per_state, stats =
    List.fold_left
      (fun (fs, acc) (sid, st) ->
        let rfs, s = Races.check_state_stats ?carried ctx g sid st in
        (fs @ rfs @ Bounds.check_state ctx g sid st, Races.stats_add acc s))
      ([], Races.stats_zero) (Sdfg.Graph.states g)
  in
  let interstate =
    try Liveness.check g @ Reachdef.check g with _ -> []
  in
  ( Report.sort (per_state @ Defuse.check g @ interstate @ Footprint.check ?symbols g),
    stats )

let analyze ?carried ?symbols g = fst (analyze_stats ?carried ?symbols g)
