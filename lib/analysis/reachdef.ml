open Sdfg

(* Forward reaching-definitions for transient containers across state
   boundaries. The per-container status lattice is

       No (never defined)  <  Yes (defined on every path)
                 \              /
                   Maybe (some paths)

   with the pointwise meet at control-flow joins. Externals are program
   inputs and always defined; only transients are tracked. *)

type status = Maybe | Yes

(* The fact maps containers to their status; a missing container is "No".
   [None] is the unreachable state. *)
type env = (string * status) list option

let join_status a b =
  match (a, b) with Some Yes, Some Yes -> Yes | _ -> Maybe

let join (a : env) (b : env) : env =
  match (a, b) with
  | None, x | x, None -> x
  | Some fa, Some fb ->
      let keys = List.sort_uniq compare (List.map fst fa @ List.map fst fb) in
      Some
        (List.map
           (fun k -> (k, join_status (List.assoc_opt k fa) (List.assoc_opt k fb)))
           keys)

let lattice = { Fixpoint.bottom = (None : env); equal = ( = ); join; widen = None }

let solve g =
  let state_writes = Hashtbl.create 16 in
  List.iter
    (fun (sid, st) ->
      Hashtbl.replace state_writes sid (List.sort_uniq compare (snd (Defuse.state_accesses st))))
    (Graph.states g);
  Fixpoint.solve ~lattice ~init:(Some [])
    ~transfer:(fun sid env ->
      match env with
      | None -> None
      | Some facts ->
          Some
            (List.fold_left
               (fun facts c ->
                 match Graph.container_opt g c with
                 | Some (d : Graph.datadesc) when d.transient ->
                     List.sort compare ((c, Yes) :: List.remove_assoc c facts)
                 | _ -> facts)
               facts
               (Hashtbl.find state_writes sid)))
    ~edge:(fun _e env -> env)
    g

(* A transient read in a state that no definition reaches. Reads in a state
   that also writes the container stay quiet — the in-state write may precede
   the read, and state-internal ordering is {!Defuse}'s (and the executor's)
   concern. Containers never written anywhere are already {!Defuse} errors;
   re-reporting them here would be noise.

   [maybes] (default off) additionally warns when a write reaches only on
   some paths. Path-insensitivity manufactures such paths for every
   loop-carried transient (the zero-trip-count path skips the body's write),
   so the default reports definite findings only. *)
let check ?(maybes = false) g =
  let sol = solve g in
  let written_somewhere = Defuse.writes g in
  let flag sid ~via c status =
    let detail, severity =
      match status with
      | None ->
          ( Printf.sprintf
              "transient is read%s but no write reaches this state on any path" via,
            Report.Error )
      | Some Maybe ->
          ( Printf.sprintf
              "transient is read%s but a write reaches this state only on some paths" via,
            Report.Warning )
      | Some Yes -> assert false
    in
    let node =
      match Graph.state_opt g sid with
      | Some st -> ( match Sdfg.State.access_nodes st c with n :: _ -> n | [] -> -1)
      | None -> -1
    in
    Report.make ~pass:Report.Use_before_def ~severity ~state:sid ~node ~container:c detail
  in
  let transient_unwritten_here st c =
    match Graph.container_opt g c with
    | Some (d : Graph.datadesc) ->
        d.transient
        && List.mem c written_somewhere
        && not (List.mem c (snd (Defuse.state_accesses st)))
    | None -> false
  in
  let state_findings =
    List.concat_map
      (fun (sid, st) ->
        match Fixpoint.entry_fact sol sid with
        | None | Some None -> []
        | Some (Some facts) ->
            fst (Defuse.state_accesses st)
            |> List.sort_uniq compare
            |> List.filter_map (fun c ->
                   if not (transient_unwritten_here st c) then None
                   else
                     match List.assoc_opt c facts with
                     | Some Yes -> None
                     | Some Maybe when not maybes -> None
                     | (None | Some Maybe) as status -> Some (flag sid ~via:"" c status)))
      (Graph.states g)
  in
  (* interstate conditions/assignments read scalar containers after their
     source state completes *)
  let edge_findings =
    List.concat_map
      (fun (e : Graph.istate_edge) ->
        match Fixpoint.exit_fact sol e.src with
        | None | Some None -> []
        | Some (Some facts) ->
            Defuse.interstate_reads g e
            |> List.sort_uniq compare
            |> List.filter_map (fun c ->
                   match Graph.container_opt g c with
                   | Some (d : Graph.datadesc)
                     when d.transient && List.mem c written_somewhere -> (
                       match List.assoc_opt c facts with
                       | Some Yes -> None
                       | Some Maybe when not maybes -> None
                       | (None | Some Maybe) as status ->
                           Some (flag e.src ~via:" by an interstate edge" c status))
                   | _ -> None))
      (Graph.istate_edges g)
  in
  state_findings @ edge_findings
