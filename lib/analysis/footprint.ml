open Symbolic
open Sdfg

(* Symbolic whole-program footprint check. Bounds samples concretized
   per-state subsets under one valuation; this pass instead takes the fully
   propagated summary and proves, per dimension, that a container's combined
   read/write footprint escapes its shape for *every* admissible symbol value
   (program sizes are at least 1, caller-pinned symbols are exact). Only
   provable escapes are reported, so the pass is silent on anything it cannot
   decide. *)

let check_summary g bounds (summary : Propagate.summary) =
  let check_set label (c, sub) =
    match Graph.container_opt g c with
    | Some desc when desc.shape <> [] && List.length desc.shape = List.length sub ->
        List.concat
          (List.map2
             (fun (r : Subset.range) d ->
               let nonempty = Expr.compare_under bounds r.lo r.hi = `Le in
               let below = Expr.compare_under bounds r.lo (Expr.int (-1)) = `Le in
               let above = Expr.compare_under bounds d r.hi = `Le in
               if nonempty && (below || above) then
                 [
                   Report.make ~pass:Report.Footprint ~severity:Report.Error
                     ~container:c
                     ~subsets:[ Subset.to_string sub ]
                     (Printf.sprintf
                        "propagated %s footprint %s escapes shape dimension %s %s"
                        label
                        (Subset.to_string [ r ])
                        (Expr.to_string d)
                        (if below then "(below 0)" else "(at or past the end)"));
                 ]
               else [])
             sub desc.shape)
    | _ -> []
  in
  List.concat_map (check_set "read") summary.reads
  @ List.concat_map (check_set "write") summary.writes

let check ?(symbols = []) g =
  let declared = Graph.symbols g in
  let bounds s =
    match List.assoc_opt s symbols with
    | Some v -> (Some v, Some v)
    | None -> if List.mem s declared then (Some 1, None) else (None, None)
  in
  (* propagation over a malformed graph (e.g. a partially extracted cutout)
     must degrade to "no findings", not abort the whole oracle *)
  match check_summary g bounds (Propagate.summarize ~bounds g) with
  | fs -> fs
  | exception _ -> []
