(* Lowering memlet subsets to integer linear systems and deciding dependence
   queries with the Fourier-Motzkin core (Symbolic.Linsys). See deps.mli for
   the soundness contract. *)

module Expr = Symbolic.Expr
module Subset = Symbolic.Subset
module L = Symbolic.Linsys

type verdict = Disjoint | Overlap of (string * int) list | Unknown

(* Disjunctive case budgets: memlet subsets are small (<= 4 dims, strides 1-4),
   so these caps are generous; blowing one yields Unknown, never a wrong
   answer. *)
let max_systems = 512
let max_stride = 16

let ( let* ) = Option.bind

(* Substitute the pinned environment, simplify, lower to guarded linear
   alternatives. *)
let lower ~fresh env e =
  let m = Expr.Env.map (fun v -> Expr.Int v) env in
  L.of_expr ~fresh (Expr.simplify (Expr.subst m e))

(* Alternatives (as constraint lists) for [e ∈ r]. The step must lower to a
   constant in each alternative; strided ranges introduce a fresh multiplier
   variable k >= 0 with e = lo + step*k. *)
let member ~fresh ~env e (r : Subset.range) =
  let* los = lower ~fresh env r.lo in
  let* his = lower ~fresh env r.hi in
  let* steps = lower ~fresh env r.step in
  let acc = ref [] in
  let ok = ref true in
  List.iter
    (fun (sa : L.alt) ->
      if sa.term.L.coeffs <> [] then ok := false
      else
        let s = sa.term.L.const in
        List.iter
          (fun (la : L.alt) ->
            List.iter
              (fun (ha : L.alt) ->
                let guards = sa.guards @ la.guards @ ha.guards in
                let lo = la.term and hi = ha.term in
                let body =
                  if s = 1 then Some [ L.ge e lo; L.le e hi ]
                  else if s = -1 then Some [ L.le e lo; L.ge e hi ]
                  else if s = 0 then None
                  else
                    let k = L.var (fresh ()) in
                    if s > 1 then
                      Some [ L.eq e (L.add lo (L.scale s k)); L.ge k (L.const 0); L.le e hi ]
                    else Some [ L.eq e (L.add lo (L.scale s k)); L.ge k (L.const 0); L.ge e hi ]
                in
                match body with None -> ok := false | Some b -> acc := (guards @ b) :: !acc)
              his)
          los)
    steps;
  if !ok && List.length !acc <= max_systems then Some (List.rev !acc) else None

(* Alternatives covering the complement [e ∉ r]: below the start, past the
   end, or (strided ranges) inside the span but off the stride residue. *)
let not_member ~fresh ~env e (r : Subset.range) =
  let* los = lower ~fresh env r.lo in
  let* his = lower ~fresh env r.hi in
  let* steps = lower ~fresh env r.step in
  let one = L.const 1 in
  let acc = ref [] in
  let ok = ref true in
  List.iter
    (fun (sa : L.alt) ->
      if sa.term.L.coeffs <> [] then ok := false
      else
        let s = sa.term.L.const in
        List.iter
          (fun (la : L.alt) ->
            List.iter
              (fun (ha : L.alt) ->
                let guards = sa.guards @ la.guards @ ha.guards in
                let lo = la.term and hi = ha.term in
                let cases =
                  if s = 1 then Some [ [ L.le e (L.sub lo one) ]; [ L.ge e (L.add hi one) ] ]
                  else if s = -1 then
                    Some [ [ L.ge e (L.add lo one) ]; [ L.le e (L.sub hi one) ] ]
                  else if s > 1 && s <= max_stride then
                    Some
                      ([ L.le e (L.sub lo one) ] :: [ L.ge e (L.add hi one) ]
                      :: List.map
                           (fun rsd ->
                             let k = L.var (fresh ()) in
                             [ L.ge e lo; L.le e hi;
                               L.eq e (L.add lo (L.add (L.scale s k) (L.const rsd)));
                               L.ge k (L.const 0) ])
                           (List.init (s - 1) (fun i -> i + 1)))
                  else if s < -1 && -s <= max_stride then
                    Some
                      ([ L.ge e (L.add lo one) ] :: [ L.le e (L.sub hi one) ]
                      :: List.map
                           (fun rsd ->
                             let k = L.var (fresh ()) in
                             [ L.le e lo; L.ge e hi;
                               L.eq e (L.sub (L.add lo (L.scale s k)) (L.const rsd));
                               L.ge k (L.const 0) ])
                           (List.init (-s - 1) (fun i -> i + 1)))
                  else None
                in
                match cases with
                | None -> ok := false
                | Some cs -> List.iter (fun c -> acc := (guards @ c) :: !acc) cs)
              his)
          los)
    steps;
  if !ok && List.length !acc <= max_systems then Some (List.rev !acc) else None

(* Cartesian conjunction of per-dimension alternative lists. *)
let cross_systems xss =
  let r =
    List.fold_left
      (fun acc alts ->
        if List.length acc * List.length alts > max_systems then raise Exit
        else List.concat_map (fun sys -> List.map (fun a -> sys @ a) alts) acc)
      [ [] ] xss
  in
  r

let evar d = Printf.sprintf "$e%d" d

(* Systems whose conjunction with each alternative asserts that the point
   ($e0, ..) lies in [subset]. *)
let in_subset ~fresh ~env subset =
  let rec per_dim d = function
    | [] -> Some []
    | r :: rest ->
        let* a = member ~fresh ~env (L.var (evar d)) r in
        let* more = per_dim (d + 1) rest in
        Some (a :: more)
  in
  let* dims = per_dim 0 subset in
  match cross_systems dims with systems -> Some systems | exception Exit -> None

let vars_of_sys sys =
  List.concat_map (fun c -> List.map fst (match c with L.Ge0 l | L.Eq0 l -> l.L.coeffs)) sys
  |> List.sort_uniq compare

(* Interval-fact constraints for every system variable not in [known] and not
   auxiliary; returns them together with the list of such ambient symbols. *)
let ambient_constraints ~bounds ~known sys =
  let ambient =
    List.filter (fun v -> (not (L.is_aux v)) && not (List.mem v known)) (vars_of_sys sys)
  in
  let cs =
    List.concat_map
      (fun v ->
        let lo, hi = bounds v in
        (match lo with Some l -> [ L.ge (L.var v) (L.const l) ] | None -> [])
        @ match hi with Some h -> [ L.le (L.var v) (L.const h) ] | None -> [])
      ambient
  in
  (cs, ambient)

(* Concrete iteration-domain constraints for one parameter name. *)
let domain_constraints ~fresh name (c : Subset.crange) =
  let p = L.var name in
  if c.cstep = 1 then [ L.ge p (L.const c.clo); L.le p (L.const c.chi) ]
  else if c.cstep = -1 then [ L.le p (L.const c.clo); L.ge p (L.const c.chi) ]
  else
    let k = L.var (fresh ()) in
    let stride = [ L.eq p (L.add (L.const c.clo) (L.scale c.cstep k)); L.ge k (L.const 0) ] in
    if c.cstep > 1 then L.le p (L.const c.chi) :: stride else L.ge p (L.const c.chi) :: stride

let overlap ~env ~bounds ~params ~primed ~write ~access =
  if List.length write <> List.length access then Unknown
  else if List.exists (fun (_, c) -> Subset.crange_count c = 0) params then
    (* empty iteration domain: no two distinct iterations exist *)
    Disjoint
  else
    let fresh = L.gensym () in
    match (in_subset ~fresh ~env write, in_subset ~fresh ~env access) with
    | Some wsys, Some asys -> (
        let dom =
          List.concat_map
            (fun (p, c) ->
              domain_constraints ~fresh p c
              @ domain_constraints ~fresh (List.assoc p primed) c)
            params
        in
        let distinct =
          List.concat_map
            (fun (p, p') ->
              [ [ L.le (L.var p) (L.sub (L.var p') (L.const 1)) ];
                [ L.ge (L.var p) (L.add (L.var p') (L.const 1)) ] ])
            primed
        in
        match cross_systems [ wsys; asys; distinct ] with
        | exception Exit -> Unknown
        | merged ->
            let known = List.concat_map (fun (p, p') -> [ p; p' ]) primed in
            let systems = List.map (fun sys -> dom @ sys) merged in
            let ambient = ref [] in
            let systems =
              List.map
                (fun sys ->
                  let cs, amb = ambient_constraints ~bounds ~known sys in
                  ambient := List.sort_uniq compare (amb @ !ambient);
                  cs @ sys)
                systems
            in
            let rec scan unknown = function
              | [] -> if unknown then Unknown else Disjoint
              | sys :: rest -> (
                  match L.solve sys with
                  | L.Unsat -> scan unknown rest
                  | L.Sat model when !ambient = [] ->
                      Overlap (List.filter (fun (v, _) -> List.mem v known) model)
                  | L.Sat _ | L.Unknown -> scan true rest)
            in
            scan false systems)
    | _ -> Unknown

(* Systems asserting ∃e: e ∈ a ∧ e ∉ b (complement split per dimension),
   with interval-fact constraints on every free program symbol. *)
let difference_systems ~bounds a b =
  if List.length a <> List.length b then None
  else
    let fresh = L.gensym () in
    let env = Expr.Env.empty in
    let* in_a = in_subset ~fresh ~env a in
    let* per_dim =
      List.fold_left
        (fun acc (d, r) ->
          let* acc = acc in
          let* alts = not_member ~fresh ~env (L.var (evar d)) r in
          Some ((d, alts) :: acc))
        (Some [])
        (List.mapi (fun d r -> (d, r)) b)
    in
    let systems =
      List.concat_map
        (fun (_, alts) ->
          match cross_systems [ in_a; alts ] with s -> s | exception Exit -> raise Exit)
        (List.rev per_dim)
    in
    if List.length systems > max_systems then None
    else
      Some
        (List.map
           (fun sys ->
             let cs, _ = ambient_constraints ~bounds ~known:[] sys in
             cs @ sys)
           systems)

let difference_systems ~bounds a b =
  match difference_systems ~bounds a b with v -> v | exception Exit -> None

let equal_sets ~bounds a b =
  match (difference_systems ~bounds a b, difference_systems ~bounds b a) with
  | Some sab, Some sba -> List.for_all (fun sys -> L.solve sys = L.Unsat) (sab @ sba)
  | _ -> false

(* Witness searches pin every declared symbol that occurs free in either set
   to its reference value: a difference visible only at degenerate sizes
   (where min/max-enclosed propagation over empty map ranges turns into
   garbage) must not masquerade as a refutation of the healthy program. The
   resulting valuation therefore always replays at the caller's
   concretization. *)
let pin_constraints ~symbols a b =
  let free = Subset.free_syms a @ Subset.free_syms b in
  List.filter_map
    (fun (s, v) -> if List.mem s free then Some (L.eq (L.var s) (L.const v)) else None)
    symbols

let extract_witness ~symbols dims model =
  let valuation =
    List.map
      (fun (s, d) -> (s, Option.value ~default:d (List.assoc_opt s model)))
      symbols
  in
  let element =
    List.init dims (fun d -> Option.value ~default:0 (List.assoc_opt (evar d) model))
  in
  (valuation, element)

let scan_for_witness ~symbols dims pins systems =
  List.find_map
    (fun sys ->
      match L.solve (pins @ sys) with
      | L.Sat m -> Some (extract_witness ~symbols dims m)
      | _ -> None)
    systems

let difference_witness ~bounds ~symbols a b =
  let dims = List.length a in
  let pins = pin_constraints ~symbols a b in
  let scan = scan_for_witness ~symbols dims pins in
  match (difference_systems ~bounds a b, difference_systems ~bounds b a) with
  | Some sab, Some sba -> ( match scan sab with Some w -> Some w | None -> scan sba)
  | Some sab, None -> scan sab
  | None, Some sba -> scan sba
  | None, None -> None

let uncovered ~bounds ~symbols a b =
  let pins = pin_constraints ~symbols a b in
  match difference_systems ~bounds a b with
  | Some sab -> scan_for_witness ~symbols (List.length a) pins sab
  | None -> None

let disjoint_under ~bounds a b =
  if List.length a <> List.length b then false
  else
    let fresh = L.gensym () in
    let env = Expr.Env.empty in
    match (in_subset ~fresh ~env a, in_subset ~fresh ~env b) with
    | Some sa, Some sb -> (
        match cross_systems [ sa; sb ] with
        | exception Exit -> false
        | merged ->
            List.for_all
              (fun sys ->
                let cs, _ = ambient_constraints ~bounds ~known:[] sys in
                L.solve (cs @ sys) = L.Unsat)
              merged)
    | _ -> false
