(** Exact affine dependence queries over memlet subsets.

    This is the bridge between the {!Symbolic.Linsys} decision core and the
    analyses: it lowers subset membership ([e ∈ \[lo:hi:step\]]), complement
    membership (below the start, past the end, or off the stride residue),
    parameter iteration domains and pairwise distinctness ([ρ ≠ ρ']) into
    conjunctions of integer linear constraints, solves every disjunctive case,
    and reassembles three-valued verdicts:

    - {b Disjoint} — proof: no admissible valuation makes the two regions
      share an element (every case is [Unsat]);
    - {b Overlap w} — a concrete, solver-verified valuation of the scope
      parameters (and their primed copies) exhibiting a shared element, ready
      to seed the fuzzer as a directed probe;
    - {b Unknown} — a case hit a fuel cap, a non-affine term, or a witness
      that could not be trusted; callers fall back to the sampled tier.

    Free program symbols that the caller's environment does not pin are
    universally quantified on the [Disjoint] side (their interval facts, when
    available, enter as extra constraints), and conservatively poison the
    [Overlap] side: a witness is only reported when every variable it binds is
    a scope parameter, so no spurious race can be reported for an unreachable
    ambient value. *)

module Expr = Symbolic.Expr
module Subset = Symbolic.Subset

type verdict =
  | Disjoint
  | Overlap of (string * int) list
      (** valuation of parameters and primed parameters at a shared element *)
  | Unknown

(** [overlap ~env ~bounds ~params ~primed ~write ~access] decides whether the
    write region [write] (over parameter names) and the region [access] (over
    the primed names) can share an element at two {e distinct} parameter
    valuations drawn from the concrete ranges [params]. [env] pins ambient
    program symbols and is substituted into both subsets first; [bounds]
    supplies interval facts for symbols [env] leaves free. [primed] maps each
    parameter to its primed copy; both ends of each pair range over the same
    concrete domain. *)
val overlap :
  env:int Expr.Env.t ->
  bounds:(string -> int option * int option) ->
  params:(string * Subset.crange) list ->
  primed:(string * string) list ->
  write:Subset.t ->
  access:Subset.t ->
  verdict

(** [equal_sets ~bounds a b] proves that [a] and [b] denote the same element
    set for {e every} symbol valuation admitted by [bounds] (both difference
    directions are [Unsat]). [false] means "could not prove", never "proved
    different". *)
val equal_sets : bounds:(string -> int option * int option) -> Subset.t -> Subset.t -> bool

(** [difference_witness ~bounds ~symbols a b] searches for a verified point in
    the symmetric difference of [a] and [b]: a valuation of the declared
    [symbols] together with the differing element. Every symbol in [symbols]
    that occurs free in [a] or [b] is {e pinned} to its given value, so the
    witness is always at the caller's reference concretization — a difference
    only visible at degenerate sizes (where min/max-widened summaries of empty
    map ranges are meaningless) yields [None], not a spurious refutation. *)
val difference_witness :
  bounds:(string -> int option * int option) ->
  symbols:(string * int) list ->
  Subset.t ->
  Subset.t ->
  ((string * int) list * int list) option

(** [uncovered ~bounds ~symbols a b] is the one-directional variant: a
    verified point of [a \ b] (an element of [a] provably outside [b]) at the
    pinned reference concretization, or [None]. [b \ a] is never consulted —
    the use case is read-coverage, where a read set strictly inside the write
    set is fine. *)
val uncovered :
  bounds:(string -> int option * int option) ->
  symbols:(string * int) list ->
  Subset.t ->
  Subset.t ->
  ((string * int) list * int list) option

(** [disjoint_under ~bounds a b] proves [a] and [b] share no element under any
    symbol valuation admitted by [bounds]. [false] means "could not prove". *)
val disjoint_under : bounds:(string -> int option * int option) -> Subset.t -> Subset.t -> bool
