(** Interstate reaching definitions for transient containers.

    Extends {!Defuse} across state boundaries: {!Defuse} flags a transient
    read that is {e never} written anywhere; this pass flags a read that no
    write {e reaches} — the container is written, but only in states that
    cannot precede the reading one (definite, [Error]) or only on some paths
    to it ([Warning]). Runs the {!Fixpoint} solver forward with a
    per-container No/Maybe/Yes definedness lattice. *)

open Sdfg

type status = Maybe | Yes

(** Container definedness per program point; a container missing from the
    list is never-defined ("No"), [None] is unreachable. *)
type env = (string * status) list option

val solve : Graph.t -> env Fixpoint.solution

(** Definite findings (no write reaches on {e any} path). [maybes] also
    warns on some-paths-only reachability — off by default because
    path-insensitive analysis sees a zero-trip-count path through every
    loop, flagging perfectly healthy loop-carried transients. *)
val check : ?maybes:bool -> Graph.t -> Report.finding list
