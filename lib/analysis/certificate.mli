(** Machine-checkable equivalence certificates.

    When the translation validator ({!Equiv}) proves a transformation instance
    dataflow-equivalent, it emits a certificate recording exactly what was
    matched: per externally visible container, the fully propagated pre- and
    post-transformation read/write subsets (which must be symbolically equal
    under the recorded symbol bounds), and the per-container access-order
    signatures. [check] re-establishes every equality from the recorded data
    alone, independently of the certifier's search. *)

open Symbolic

type side = Read | Write

(** One matched container/subset pair: the fully propagated [side]-set of
    [container] before ([pre]) and after ([post]) the transformation. *)
type entry = { container : string; side : side; pre : Subset.t; post : Subset.t }

type event = string * [ `R | `W | `RW ]

(** Permission to reorder one container's accesses: valid when the container's
    write-projected event order is unchanged and, per side where both are
    recorded, its read set is provably disjoint from its write set
    ({!Deps.disjoint_under}) — reads commute freely with writes they can never
    touch. [None] on a side means that side had no read/write pair to prove. *)
type order_waiver = {
  w_container : string;
  pre_rw : (Subset.t * Subset.t) option;  (** (reads, writes) before *)
  post_rw : (Subset.t * Subset.t) option;  (** (reads, writes) after *)
}

type t = {
  xform : string;  (** transformation name *)
  site : string;  (** printed application site *)
  assumed : (string * (int option * int option)) list;
      (** symbol bounds the equalities hold under (program sizes are >= 1) *)
  entries : entry list;
  order_pre : event list;  (** access-order signature before *)
  order_post : event list;  (** access-order signature after *)
  waivers : order_waiver list;
      (** containers whose order difference is covered by a disjointness
          proof instead of order equality *)
}

val side_name : side -> string

(** Re-verify the certificate: every entry's [pre]/[post] subsets must be
    {!Symbolic.Subset.equal} — or provably equal as element sets via the exact
    dependence engine ({!Deps.equal_sets}) — under the assumed bounds, and
    each non-waived container's event sequence must agree between [order_pre]
    and [order_post]; each waiver must re-prove its disjointness. *)
val check : t -> bool

val pp : Format.formatter -> t -> unit
val to_string : t -> string
