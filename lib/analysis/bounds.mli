(** Static out-of-bounds detection.

    For every leaf memlet occurrence, the binding variables (recognized
    loop variables and the map parameters of the enclosing scope chain,
    outermost first) are sampled at the first and last element of their
    concretized ranges under the context's symbol assumptions — branching
    on every boundary combination, and pruning valuations under which an
    enclosing range is empty (zero iterations access nothing; this is what
    keeps triangular loop nests like [j in 0:i-1] clean). At each sampled
    valuation the occurrence's subset is concretized and compared per
    dimension against the container shape: every non-empty range must
    satisfy [0 <= lo] and [hi <= dim - 1]. Occurrences that do not fully
    resolve are skipped — conservative, no guessing. *)

open Sdfg

val check_state : Context.t -> Graph.t -> int -> State.t -> Report.finding list
val check : ?symbols:(string * int) list -> Graph.t -> Report.finding list
