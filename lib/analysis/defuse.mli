(** Whole-program def-use hygiene for transient containers.

    Mirrors the access classification of the cutout extractor (access-node
    endpoints of dataflow edges; write-conflict-resolution writes also read;
    interstate conditions and assignments read scalar containers), then
    flags transient containers that are read but never written
    (use-before-def — the data is uninitialized, since transients are not
    program inputs) and transients that are written but never read
    (dead writes). Non-transient containers are the program's external
    interface and are exempt on both counts. *)

open Sdfg

(** Containers read / written by one state's dataflow (unsorted, with
    duplicates) — the per-state building block the interstate passes
    ({!Liveness}, {!Reachdef}) share with the whole-program check. *)
val state_accesses : State.t -> string list * string list

(** Scalar containers read by an interstate edge's condition or assignment
    right-hand sides. *)
val interstate_reads : Graph.t -> Graph.istate_edge -> string list

(** Containers read anywhere in the program, sorted and deduplicated —
    by construction equal to the cutout extractor's program-read set. *)
val reads : Graph.t -> string list

(** Containers written anywhere in the program, sorted and deduplicated. *)
val writes : Graph.t -> string list

val check : Graph.t -> Report.finding list
