(** Whole-program def-use hygiene for transient containers.

    Mirrors the access classification of the cutout extractor (access-node
    endpoints of dataflow edges; write-conflict-resolution writes also read;
    interstate conditions and assignments read scalar containers), then
    flags transient containers that are read but never written
    (use-before-def — the data is uninitialized, since transients are not
    program inputs) and transients that are written but never read
    (dead writes). Non-transient containers are the program's external
    interface and are exempt on both counts. *)

open Sdfg

(** Containers read / written by one state's dataflow (unsorted, with
    duplicates) — the per-state building block the interstate passes
    ({!Liveness}, {!Reachdef}) share with the whole-program check. *)
val state_accesses : State.t -> string list * string list

(** Scalar containers read by an interstate edge's condition or assignment
    right-hand sides. *)
val interstate_reads : Graph.t -> Graph.istate_edge -> string list

(** Containers read anywhere in the program, sorted and deduplicated —
    by construction equal to the cutout extractor's program-read set. *)
val reads : Graph.t -> string list

(** Containers written anywhere in the program, sorted and deduplicated. *)
val writes : Graph.t -> string list

val check : Graph.t -> Report.finding list

(** Subset-level refinement of [check]: for each transient, asks the exact
    dependence engine ({!Deps}) whether some element of a single propagated
    read access provably lies outside the fully propagated write set — the
    signature of a write set shrunk by a widened stride or shifted subset
    that still touches the container, invisible to the name-level check.
    Reads are checked per access (single affine accesses widen exactly;
    unions over-approximate), WCR accumulations are exempt on the read side,
    and declared symbols are pinned to [symbols] (default size 8 each), so
    the reported witness element is in-shape and the valuation replays
    directly. Pairs the engine cannot decide are skipped silently.

    Deliberately {e not} part of {!Oracle.analyze}: several shipped stencils
    legitimately read zero-initialized halo cells of transients, so this
    check is a {e delta} signal — {!Delta} and {!Equiv} run it on both sides
    of a transformation and report only newly flagged containers. *)
val check_coverage : ?symbols:(string * int) list -> Graph.t -> Report.finding list
