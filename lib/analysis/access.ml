open Sdfg

type kind = Read | Write of Memlet.wcr option

type occ = {
  node : int;
  edge : int;
  container : string;
  subset : Symbolic.Subset.t;
  kind : kind;
  scopes : int list;
}

let is_write o = match o.kind with Write _ -> true | Read -> false

let scope_chain st n =
  let rec go n acc =
    match State.scope_of st n with None -> List.rev acc | Some e -> go e (e :: acc)
  in
  go n []

let of_state g st =
  List.concat_map
    (fun (e : State.edge) ->
      let occ node container subset kind =
        { node; edge = e.e_id; container; subset; kind; scopes = scope_chain st node }
      in
      let src = State.node_opt st e.src and dst = State.node_opt st e.dst in
      match (src, dst, e.memlet) with
      (* tasklet/library consumption and production points *)
      | _, Some (Node.Tasklet _ | Node.Library _), Some m ->
          [ occ e.dst m.data m.subset Read ]
      | Some (Node.Tasklet _ | Node.Library _), _, Some m ->
          [ occ e.src m.data m.subset (Write m.wcr) ]
      (* access-to-access copies: read the source, write the destination *)
      | Some (Node.Access _), Some (Node.Access d), Some m ->
          let w =
            match e.dst_memlet with
            | Some dm -> occ e.dst dm.data dm.subset (Write dm.wcr)
            | None -> (
                match Graph.container_opt g d with
                | Some desc -> occ e.dst d (Symbolic.Subset.full desc.shape) (Write None)
                | None -> occ e.dst d [] (Write None))
          in
          [ occ e.src m.data m.subset Read; w ]
      | _ -> [])
    (State.edges st)

let widen_through st scopes subset =
  (* innermost-first: fold the scope parameters out one level at a time *)
  List.fold_left
    (fun sub entry ->
      match State.node_opt st entry with
      | Some (Node.Map_entry info) ->
          Propagate.through_map ~params:info.params ~ranges:info.ranges sub
      | _ -> sub)
    subset scopes

let in_scope g st ~entry =
  List.filter_map
    (fun o ->
      match
        (* scopes strictly inside [entry]: the chain prefix before [entry] *)
        let rec prefix = function
          | [] -> None
          | e :: _ when e = entry -> Some []
          | e :: rest -> Option.map (fun p -> e :: p) (prefix rest)
        in
        prefix o.scopes
      with
      | None -> None
      | Some inner -> Some { o with subset = widen_through st inner o.subset })
    (of_state g st)
