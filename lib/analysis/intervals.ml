open Sdfg
module Expr = Symbolic.Expr
module Cond = Symbolic.Cond

(* [cong = Some (0, c)] means "exactly c"; [Some (m, r)] with [m > 0] means
   "congruent to r modulo m" (r already reduced); [None] means no stride
   information. Endpoints are symbolic expressions over program parameters,
   so a loop bounded by [t < T] keeps the parametric bound [T - 1] instead of
   degrading to "unbounded". *)
type fact = { lo : Expr.t option; hi : Expr.t option; cong : (int * int) option }

let top = { lo = None; hi = None; cong = None }
let exactly c = { lo = Some (Expr.int c); hi = Some (Expr.int c); cong = Some (0, c) }

let bounded f = f.lo <> None || f.hi <> None || f.cong <> None

let pp_fact fmt f =
  let e = function None -> "?" | Some x -> Expr.to_string x in
  Format.fprintf fmt "[%s, %s]" (e f.lo) (e f.hi);
  match f.cong with
  | Some (0, c) -> Format.fprintf fmt " =%d" c
  | Some (m, r) -> Format.fprintf fmt " =%d (mod %d)" r m
  | None -> ()

(* The abstract environment: symbol -> fact, sorted by symbol; a missing
   symbol is top. [None] is the unreachable state (lattice bottom). *)
type env = (string * fact) list option

let rec gcd a b = if b = 0 then a else gcd b (a mod b)
let gcd3 a b c = gcd (gcd (abs a) (abs b)) (abs c)

let norm_cong = function
  | Some (0, c) -> Some (0, c)
  | Some (m, r) when m > 0 ->
      let r = ((r mod m) + m) mod m in
      if m = 1 then None else Some (m, r)
  | _ -> None

let join_cong a b =
  match (a, b) with
  | None, _ | _, None -> None
  | Some (m1, r1), Some (m2, r2) ->
      if (m1, r1) = (m2, r2) then Some (m1, r1)
      else
        let g = gcd3 m1 m2 (r1 - r2) in
        if g = 0 then Some (0, r1) else norm_cong (Some (g, r1))

let add_cong a b =
  match (a, b) with
  | Some (m1, r1), Some (m2, r2) ->
      let g = gcd (abs m1) (abs m2) in
      if g = 0 then Some (0, r1 + r2) else norm_cong (Some (g, r1 + r2))
  | _ -> None

let neg_cong = function
  | Some (0, c) -> Some (0, -c)
  | Some (m, r) -> norm_cong (Some (m, -r))
  | None -> None

let mul_cong_const c = function
  | Some (0, r) -> Some (0, c * r)
  | Some (m, r) when c <> 0 -> norm_cong (Some (abs (c * m), c * r))
  | _ -> None

(* Symbolic endpoint comparison under the caller's parameter bounds: joins
   pick the provably smaller/larger endpoint and degrade to "unbounded" when
   neither direction is provable. *)
let emin bounds a b =
  match (a, b) with
  | None, _ | _, None -> None
  | Some x, Some y -> (
      if Expr.equal x y then Some x
      else
        match Expr.compare_under bounds x y with
        | `Le -> Some x
        | `Ge -> Some y
        | `Unknown -> None)

let emax bounds a b =
  match (a, b) with
  | None, _ | _, None -> None
  | Some x, Some y -> (
      if Expr.equal x y then Some x
      else
        match Expr.compare_under bounds x y with
        | `Le -> Some y
        | `Ge -> Some x
        | `Unknown -> None)

let join_fact bounds a b =
  { lo = emin bounds a.lo b.lo; hi = emax bounds a.hi b.hi; cong = join_cong a.cong b.cong }

(* A symbol missing from one side has not been assigned on that path; its
   value there is undefined (reading it is an error {!Reachdef} reports), so
   the join keeps the defined side's fact rather than degrading to top. *)
let join_env bounds (a : env) (b : env) : env =
  match (a, b) with
  | None, x | x, None -> x
  | Some fa, Some fb ->
      let keys = List.sort_uniq compare (List.map fst fa @ List.map fst fb) in
      Some
        (List.map
           (fun k ->
             match (List.assoc_opt k fa, List.assoc_opt k fb) with
             | Some f, Some g -> (k, join_fact bounds f g)
             | Some f, None | None, Some f -> (k, f)
             | None, None -> (k, top))
           keys)

(* Widening keeps only the endpoints that have already stabilized: an
   endpoint still moving after [widen_after] passes is part of an infinite
   ascending chain (e.g. [t := t + 1] against an unprovable bound) and is
   dropped. Congruence needs no widening — gcd joins descend a finite
   divisor chain. *)
let widen_env bounds (old_e : env) (new_e : env) : env =
  match (old_e, new_e) with
  | None, x | x, None -> x
  | Some fo, Some fn ->
      let joined = Option.get (join_env bounds (Some fo) (Some fn)) in
      Some
        (List.map
           (fun (k, j) ->
             let o = Option.value ~default:top (List.assoc_opt k fo) in
             ( k,
               {
                 lo = (if o.lo = j.lo then j.lo else None);
                 hi = (if o.hi = j.hi then j.hi else None);
                 cong = j.cong;
               } ))
           joined)

let set_fact env v f =
  List.sort compare ((v, f) :: List.remove_assoc v env)

let get_fact env v = Option.value ~default:top (List.assoc_opt v env)

(* Interval/stride evaluation of an assignment right-hand side. Parameters
   (symbols never assigned on an interstate edge) evaluate to themselves as
   exact symbolic endpoints; assigned symbols evaluate to their current
   fact. *)
let rec eval_fact ~stable env e =
  let simp = Option.map Expr.simplify in
  match e with
  | Expr.Int c -> exactly c
  | Expr.Sym v when stable v -> { lo = Some e; hi = Some e; cong = None }
  | Expr.Sym v -> get_fact env v
  | Expr.Add (a, b) ->
      let fa = eval_fact ~stable env a and fb = eval_fact ~stable env b in
      let lift op x y = match (x, y) with Some x, Some y -> simp (Some (op x y)) | _ -> None in
      { lo = lift Expr.add fa.lo fb.lo; hi = lift Expr.add fa.hi fb.hi; cong = add_cong fa.cong fb.cong }
  | Expr.Sub (a, b) ->
      let fa = eval_fact ~stable env a and fb = eval_fact ~stable env b in
      let lift x y = match (x, y) with Some x, Some y -> simp (Some (Expr.sub x y)) | _ -> None in
      { lo = lift fa.lo fb.hi; hi = lift fa.hi fb.lo; cong = add_cong fa.cong (neg_cong fb.cong) }
  | Expr.Mul (a, b) -> (
      let const_side =
        match (Expr.is_constant a, Expr.is_constant b) with
        | Some c, _ -> Some (c, b)
        | _, Some c -> Some (c, a)
        | _ -> None
      in
      match const_side with
      | None -> top
      | Some (c, other) ->
          let f = eval_fact ~stable env other in
          let scale x = Option.map (fun x -> Expr.simplify (Expr.mul (Expr.int c) x)) x in
          if c >= 0 then { lo = scale f.lo; hi = scale f.hi; cong = mul_cong_const c f.cong }
          else { lo = scale f.hi; hi = scale f.lo; cong = mul_cong_const c f.cong })
  | Expr.Neg a ->
      let f = eval_fact ~stable env a in
      let n x = Option.map (fun x -> Expr.simplify (Expr.neg x)) x in
      { lo = n f.hi; hi = n f.lo; cong = neg_cong f.cong }
  | _ -> top

(* Condition refinement: an interstate edge guarded by [v < e] tightens v's
   upper endpoint on the path it guards. Only applied when the bound [e] is
   a parameter expression — an endpoint naming another assigned symbol would
   denote that symbol's value at an unrepresentable program point. *)
let refine_by_cond ~stable ~bounds cond env =
  let param_expr e = List.for_all stable (Expr.free_syms e) in
  let clamp_hi v e env =
    if not (param_expr e) then env
    else
      let f = get_fact env v in
      let hi = match f.hi with None -> Some e | h -> emin bounds h (Some e) in
      let hi = match hi with None -> Some e | h -> h in
      set_fact env v { f with hi = Option.map Expr.simplify hi }
  in
  let clamp_lo v e env =
    if not (param_expr e) then env
    else
      let f = get_fact env v in
      let lo = match f.lo with None -> Some e | l -> emax bounds l (Some e) in
      let lo = match lo with None -> Some e | l -> l in
      set_fact env v { f with lo = Option.map Expr.simplify lo }
  in
  let open Symbolic.Cond in
  let rec go c env =
    match c with
    | And (a, b) -> go b (go a env)
    | Lt (Expr.Sym v, e) when not (stable v) -> clamp_hi v (Expr.simplify (Expr.sub e Expr.one)) env
    | Le (Expr.Sym v, e) when not (stable v) -> clamp_hi v e env
    | Gt (Expr.Sym v, e) when not (stable v) -> clamp_lo v (Expr.simplify (Expr.add e Expr.one)) env
    | Ge (Expr.Sym v, e) when not (stable v) -> clamp_lo v e env
    | Lt (e, Expr.Sym v) when not (stable v) -> clamp_lo v (Expr.simplify (Expr.add e Expr.one)) env
    | Le (e, Expr.Sym v) when not (stable v) -> clamp_lo v e env
    | Gt (e, Expr.Sym v) when not (stable v) -> clamp_hi v (Expr.simplify (Expr.sub e Expr.one)) env
    | Ge (e, Expr.Sym v) when not (stable v) -> clamp_hi v e env
    | Eq (Expr.Sym v, e) when not (stable v) -> clamp_lo v e (clamp_hi v e env)
    | Eq (e, Expr.Sym v) when not (stable v) -> clamp_lo v e (clamp_hi v e env)
    | _ -> env
  in
  go cond env

let assigned_symbols g =
  List.concat_map (fun (e : Graph.istate_edge) -> List.map fst e.assigns) (Graph.istate_edges g)
  |> List.sort_uniq compare

(* Base bounds for endpoint comparisons: caller-pinned symbols are exact,
   every other program parameter is a size assumed >= 1 (the same convention
   the certifier uses). *)
let default_bounds ?(symbols = []) g =
  let assigned = assigned_symbols g in
  fun s ->
    match List.assoc_opt s symbols with
    | Some v -> (Some v, Some v)
    | None -> if List.mem s assigned then (None, None) else (Some 1, None)

let solve ?symbols ?max_passes ?widen_after g =
  let bounds = default_bounds ?symbols g in
  let assigned = assigned_symbols g in
  let stable s = not (List.mem s assigned) in
  let lattice =
    {
      Fixpoint.bottom = (None : env);
      equal = ( = );
      join = join_env bounds;
      widen = Some (widen_env bounds);
    }
  in
  let edge (e : Graph.istate_edge) (env : env) : env =
    match env with
    | None -> None
    | Some facts ->
        let facts = refine_by_cond ~stable ~bounds e.cond facts in
        Some
          (List.fold_left
             (fun facts (v, rhs) -> set_fact facts v (eval_fact ~stable facts rhs))
             facts e.assigns)
  in
  Fixpoint.solve ?max_passes ?widen_after ~lattice ~init:(Some [])
    ~transfer:(fun _sid env -> env)
    ~edge g

(* Whole-program envelope: for each interstate-assigned symbol, the join of
   its fact over every reachable state — the range of values the symbol takes
   anywhere during execution. *)
let facts ?symbols g =
  let bounds = default_bounds ?symbols g in
  let sol = solve ?symbols g in
  let envelope =
    List.fold_left
      (fun acc (_sid, env) -> join_env bounds acc env)
      None
      (sol.Fixpoint.entry @ sol.Fixpoint.exit_)
  in
  match envelope with
  | None -> []
  | Some fs -> List.filter (fun (_, f) -> bounded f) fs

(* Concrete bound extraction for {!Symbolic.Subset.equal}-style bounds
   functions: the symbolic endpoints are parameter expressions, so their
   conservative interval under the base bounds is a sound concrete bound for
   the symbol itself. *)
let concrete_bounds ?symbols g fs =
  let base = default_bounds ?symbols g in
  List.map
    (fun (s, f) ->
      let lo = match f.lo with None -> None | Some e -> fst (Expr.interval base e) in
      let hi = match f.hi with None -> None | Some e -> snd (Expr.interval base e) in
      (s, (lo, hi)))
    fs
