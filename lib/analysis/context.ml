open Sdfg
module Expr = Symbolic.Expr
module Subset = Symbolic.Subset

type t = {
  env : int Expr.Env.t;
  loops : (string * Subset.range) list;
  candidates : (string * int list) list;
  bounds : (string * (int option * int option)) list;
}

let bounds_fn t s = Option.value ~default:(None, None) (List.assoc_opt s t.bounds)

(* The span of a canonical loop: up-counting loops run from [init] to the
   bound of the guard condition, down-counting loops the other way. Step is
   irrelevant for bounding analyses. *)
let loop_range (l : Transforms.Xform.loop) =
  let open Symbolic.Cond in
  match l.cond with
  | Lt (Expr.Sym v, b) when v = l.var -> Some (Subset.dim l.init (Expr.sub b Expr.one))
  | Le (Expr.Sym v, b) when v = l.var -> Some (Subset.dim l.init b)
  | Gt (Expr.Sym v, b) when v = l.var -> Some (Subset.dim (Expr.add b Expr.one) l.init)
  | Ge (Expr.Sym v, b) when v = l.var -> Some (Subset.dim b l.init)
  | _ -> None

(* Candidate values for interstate-assigned symbols: a bounded fixpoint over
   all assignment right-hand sides, evaluated under the assumptions plus the
   candidates found so far (one representative per referenced symbol pair,
   capped). Loop variables are excluded — their whole range is known. *)
let candidate_values g env ~loop_vars =
  let assigns =
    List.concat_map (fun (e : Graph.istate_edge) -> e.assigns) (Graph.istate_edges g)
    |> List.filter (fun (v, _) -> not (List.mem v loop_vars))
  in
  let tbl : (string, int list) Hashtbl.t = Hashtbl.create 8 in
  let add v n =
    let cur = Option.value ~default:[] (Hashtbl.find_opt tbl v) in
    if (not (List.mem n cur)) && List.length cur < 8 then Hashtbl.replace tbl v (n :: cur)
  in
  for _round = 1 to 3 do
    List.iter
      (fun (v, rhs) ->
        let free = Expr.free_syms rhs in
        let envs =
          (* one env per combination of known candidate values, capped *)
          List.fold_left
            (fun envs s ->
              if Expr.Env.mem s env then envs
              else
                match Hashtbl.find_opt tbl s with
                | Some vals when vals <> [] ->
                    List.concat_map (fun e -> List.map (fun n -> Expr.Env.add s n e) vals) envs
                    |> fun l -> if List.length l > 16 then List.filteri (fun i _ -> i < 16) l else l
                | _ -> envs)
            [ env ] free
        in
        List.iter
          (fun e ->
            match Expr.eval e rhs with
            | n -> add v n
            | exception (Expr.Unbound_symbol _ | Expr.Division_by_zero) -> ())
          envs)
      assigns
  done;
  Hashtbl.fold (fun v ns acc -> (v, List.rev ns) :: acc) tbl []
  |> List.sort compare

let make ?(symbols = []) ?(facts = []) g =
  let env = Expr.Env.of_list symbols in
  let loops =
    List.filter_map
      (fun (l : Transforms.Xform.loop) ->
        Option.map (fun r -> (l.var, r)) (loop_range l))
      (Transforms.Xform.find_loops g)
  in
  let candidates = candidate_values g env ~loop_vars:(List.map fst loops) in
  (* interval facts from the fixpoint solver contribute their concrete
     endpoints as extra candidate values: a symbol the assignment scan could
     not evaluate may still have a provable range whose extremes are exactly
     the values bounds/race sampling should probe *)
  let candidates =
    List.fold_left
      (fun cands (s, (lo, hi)) ->
        if Expr.Env.mem s env || List.mem_assoc s loops then cands
        else
          let extra = List.filter_map (fun x -> x) [ lo; hi ] in
          if extra = [] then cands
          else
            let cur = Option.value ~default:[] (List.assoc_opt s cands) in
            let merged = cur @ List.filter (fun v -> not (List.mem v cur)) extra in
            (s, merged) :: List.remove_assoc s cands)
      candidates facts
    |> List.sort compare
  in
  { env; loops; candidates; bounds = facts }

let sample_env t =
  (* loop ranges may reference symbols or outer loop variables: iterate *)
  let env = ref t.env in
  List.iter (fun (v, ns) -> match ns with n :: _ -> env := Expr.Env.add v n !env | [] -> ()) t.candidates;
  for _ = 1 to 1 + List.length t.loops do
    List.iter
      (fun (v, (r : Subset.range)) ->
        if not (Expr.Env.mem v !env) then
          match Expr.eval !env r.lo with
          | n -> env := Expr.Env.add v n !env
          | exception (Expr.Unbound_symbol _ | Expr.Division_by_zero) -> ())
      t.loops
  done;
  !env

let widen_loops t subset =
  let rec go subset fuel =
    if fuel = 0 then subset
    else
      let free = Subset.free_syms subset in
      match List.find_opt (fun (v, _) -> List.mem v free) t.loops with
      | None -> subset
      | Some (v, r) ->
          go (Sdfg.Propagate.through_map ~params:[ v ] ~ranges:[ r ] subset) (fuel - 1)
  in
  go subset (1 + List.length t.loops)
