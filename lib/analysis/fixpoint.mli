(** Generic worklist fixpoint solver over the interstate control-flow graph.

    The interstate edges of an SDFG form a state machine; a dataflow analysis
    assigns each state an abstract fact from a join-semilattice and iterates
    state transfer functions until the facts stabilize. All interstate passes
    ({!Liveness}, {!Reachdef}, {!Intervals}) instantiate this one solver, so
    convergence behaviour, evaluation order and determinism are shared.

    The iteration schedule is round-based and deterministic: ascending state
    id order, one full pass at a time, stopping after the first pass that
    changes nothing. [iterations] counts full passes — the clean-corpus
    regression asserts a bound on it for every bundled workload. *)

open Sdfg

type direction = Forward | Backward

(** A join-semilattice with optional widening. [bottom] is the identity of
    [join] (the "unreachable" fact). [widen old new_] must over-approximate
    [join old new_] and is applied instead of plain join after [widen_after]
    passes, to force convergence of domains with infinite ascending chains
    (symbolic intervals). *)
type 'a lattice = {
  bottom : 'a;
  equal : 'a -> 'a -> bool;
  join : 'a -> 'a -> 'a;
  widen : ('a -> 'a -> 'a) option;
}

type 'a solution = {
  entry : (int * 'a) list;  (** fact on entry to each state, ascending id *)
  exit_ : (int * 'a) list;  (** fact on exit from each state *)
  iterations : int;  (** full passes until stable (or until the cap) *)
  converged : bool;  (** [false] iff the pass cap was hit while still changing *)
}

val entry_fact : 'a solution -> int -> 'a option
val exit_fact : 'a solution -> int -> 'a option

val default_max_passes : int
val default_widen_after : int

(** [solve ~lattice ~init ~transfer ~edge g] iterates to a fixpoint.

    [init] is the fact entering the start state ([Forward]) or the terminal
    states ([Backward]); [transfer sid fact] pushes a fact through a state's
    dataflow; [edge e fact] pushes it across an interstate edge (condition
    refinement, symbol assignment). For [Backward], "entry" means the fact at
    the state's control-flow exit boundary and edges are traversed against
    control flow. *)
val solve :
  ?direction:direction ->
  ?max_passes:int ->
  ?widen_after:int ->
  lattice:'a lattice ->
  init:'a ->
  transfer:(int -> 'a -> 'a) ->
  edge:(Graph.istate_edge -> 'a -> 'a) ->
  Graph.t ->
  'a solution
