open Symbolic
open Sdfg

type witness = {
  valuation : (string * int) list;
  container : string;
  element : int list option;
  reason : string;
}

type verdict = Equivalent of Certificate.t | Refuted of witness | Unknown of string

let verdict_name = function
  | Equivalent _ -> "equivalent"
  | Refuted _ -> "refuted"
  | Unknown _ -> "unknown"

let pp_witness fmt w =
  Format.fprintf fmt "%s under {%s}" w.reason
    (String.concat ", "
       (List.map (fun (s, v) -> Printf.sprintf "%s=%d" s v) w.valuation));
  match w.element with
  | Some el ->
      Format.fprintf fmt " at %s[%s]" w.container
        (String.concat "," (List.map string_of_int el))
  | None -> Format.fprintf fmt " (container %s)" w.container

let pp_verdict fmt = function
  | Equivalent c -> Format.fprintf fmt "equivalent@\n%a" Certificate.pp c
  | Refuted w -> Format.fprintf fmt "refuted: %a" pp_witness w
  | Unknown why -> Format.fprintf fmt "unknown: %s" why

(* carried dependences count, as in the delta verifier: both sides see them,
   so pre-existing ones cancel and only introduced ones survive *)
let oracle ?symbols g =
  match Oracle.analyze ~carried:true ?symbols g with fs -> fs | exception _ -> []

let default_size = 8

(* A transformation-introduced static error refutes equivalence outright; the
   caller's concretization (or the default size for every symbol) is the seed
   valuation handed to the fuzzer. *)
let refute_from_delta ~valuation (f : Report.finding) =
  Refuted
    {
      valuation;
      container = f.container;
      element = None;
      reason =
        Printf.sprintf "introduces a %s finding: %s" (Report.pass_name f.pass)
          f.detail;
    }

let refute_or_unknown ?(use_deps = true) ~bounds ~symbols ~valuation ~declared mismatches =
  let grid =
    List.map
      (fun s ->
        let hi = match List.assoc_opt s symbols with Some v -> Stdlib.max 2 v | None -> 9 in
        (s, (1, hi)))
      declared
  in
  let concrete (c, side, pa, pb) =
    match (pa, pb) with
    | Some a, Some b -> (
        (* the exact tier first: a Fourier-Motzkin model of the symmetric
           difference is a verified witness, found without enumerating the
           symbol grid *)
        let exact =
          if use_deps then Deps.difference_witness ~bounds ~symbols:valuation a b
          else None
        in
        let sampled =
          match exact with
          | Some _ -> exact
          | None -> Subset.difference_witness ~symbols:grid a b
        in
        match sampled with
        | Some (va, el) ->
            Some
              (Refuted
                 {
                   valuation = va;
                   container = c;
                   element = Some el;
                   reason =
                     Printf.sprintf "propagated %s set of %s differs"
                       (Certificate.side_name side) c;
                 })
        | None -> None)
    | _ -> None
  in
  match List.filter_map concrete mismatches with
  | r :: _ -> r
  | [] -> (
      (* no concrete element witness; a one-sided footprint is still a
         definite symbolic difference worth seeding the fuzzer with *)
      match List.find_opt (fun (_, _, pa, pb) -> pa = None || pb = None) mismatches with
      | Some (c, side, pa, _) ->
          Refuted
            {
              valuation;
              container = c;
              element = None;
              reason =
                Printf.sprintf "%s is %s only in the %s version" c
                  (match side with Certificate.Read -> "read" | Write -> "written")
                  (if pa = None then "transformed" else "original");
            }
      | None ->
          let c, side, _, _ = List.hd mismatches in
          Unknown
            (Printf.sprintf
               "propagated %s set of %s differs symbolically; no concrete witness found"
               (Certificate.side_name side) c))

let decide ?(use_intervals = true) ?(use_deps = true) ~symbols g g' (x : Transforms.Xform.t)
    site =
  (* program parameters: declared symbols, anything a container shape
     mentions, and whatever the caller chose to concretize — hand-built
     graphs do not always call [add_symbol] *)
  let declared =
    let shape_syms =
      List.concat_map
        (fun (_, (d : Graph.datadesc)) -> List.concat_map Expr.free_syms d.shape)
        (Graph.containers g)
    in
    List.sort_uniq compare (Graph.symbols g @ shape_syms @ List.map fst symbols)
  in
  let valuation =
    List.map
      (fun s ->
        (s, match List.assoc_opt s symbols with Some v -> v | None -> default_size))
      declared
  in
  let delta =
    let before = oracle ~symbols g and after = oracle ~symbols g' in
    Report.sort
      (Report.new_findings ~before ~after @ Delta.coverage_delta ~symbols g g')
  in
  (* any introduced error refutes; so does an introduced race at any
     severity — a carried-dependence warning that was not there before means
     the transformation reordered accesses to concretely overlapping
     elements, which is exactly the divergence the fuzzer should chase *)
  match
    List.filter
      (fun (f : Report.finding) -> f.severity = Report.Error || f.pass = Report.Race)
      delta
  with
  | f :: _ -> refute_from_delta ~valuation f
  | [] -> (
      (* Interstate-assigned symbols (loop counters, alias chains) are not
         program parameters, so a summary mentioning one is normally
         undecidable. When the transformation leaves the interstate CFG
         untouched, such a symbol runs through the {e same} value sequence on
         both sides — it can be admitted into the comparison as an opaque
         parameter, with the interval fixpoint supplying its bounds. Only
         symbols the fixpoint actually bounds are admitted, and the
         refutation grid still ranges over true parameters only. *)
      let cfg_untouched =
        (Sdfg.Diff.compute ~original:g ~transformed:g').Sdfg.Diff.states = []
      in
      let interval_facts =
        if use_intervals && cfg_untouched then
          match Intervals.facts ~symbols g with fs -> fs | exception _ -> []
        else []
      in
      let admitted_bounds = Intervals.concrete_bounds ~symbols g interval_facts in
      let admitted = List.map fst admitted_bounds in
      let comparable = declared @ admitted in
      (* program sizes are at least 1; admitted loop symbols carry their
         inferred interval; everything else is unconstrained *)
      let bounds s =
        if List.mem s declared then (Some 1, None)
        else
          match List.assoc_opt s admitted_bounds with
          | Some b -> b
          | None -> (None, None)
      in
      (* a deliberately broken transformation can leave the scope structure
         malformed; propagation failure means "cannot decide", not a crash *)
      match
        (Propagate.summarize ~bounds g, Propagate.summarize ~bounds g')
      with
      | exception _ -> Unknown "memlet propagation failed on one of the programs"
      | pre, post -> (
      let stray su =
        List.filter
          (fun s -> not (List.mem s comparable))
          (Propagate.free_syms_of_summary su)
      in
      match stray pre @ stray post with
      | s :: _ ->
          Unknown
            (Printf.sprintf
               "summary mentions symbol %s that propagation could not eliminate" s)
      | [] -> (
          let externals =
            List.sort_uniq compare
              (Graph.external_containers g @ Graph.external_containers g')
          in
          let entries = ref [] and mismatches = ref [] in
          List.iter
            (fun c ->
              List.iter
                (fun (side, pre_l, post_l) ->
                  match (List.assoc_opt c pre_l, List.assoc_opt c post_l) with
                  | None, None -> ()
                  | Some a, Some b when Subset.equal ~bounds a b ->
                      entries :=
                        { Certificate.container = c; side; pre = a; post = b }
                        :: !entries
                  | Some a, Some b when use_deps && Deps.equal_sets ~bounds a b ->
                      (* linear normal form differs, but the exact engine
                         proves both difference directions empty: same element
                         set for every admitted symbol valuation *)
                      entries :=
                        { Certificate.container = c; side; pre = a; post = b }
                        :: !entries
                  | pa, pb -> mismatches := (c, side, pa, pb) :: !mismatches)
                [
                  (Certificate.Read, pre.Propagate.reads, post.Propagate.reads);
                  (Certificate.Write, pre.writes, post.writes);
                ])
            externals;
          let wcr_ok =
            List.for_all
              (fun c -> List.mem c pre.wcr_writes = List.mem c post.wcr_writes)
              externals
          in
          (* order is compared per container, over containers live on both
             sides: transients that the transformation removed (or introduced)
             cannot affect externally visible dataflow once the external sets
             match, but surviving ones must keep their access order *)
          let names (su : Propagate.summary) =
            List.sort_uniq compare (List.map fst (su.reads @ su.writes))
          in
          let shared = List.filter (fun c -> List.mem c (names post)) (names pre) in
          let ev c o = List.filter (fun (c', _) -> c' = c) o in
          let reordered =
            List.filter (fun c -> ev c pre.order <> ev c post.order) shared
          in
          (* a container whose event order changed can still be admitted when
             its write-projected order is intact and its read set is provably
             disjoint from its write set on both sides: reads commute with
             writes they can never touch *)
          let waiver_of c =
            if not use_deps then None
            else
              let wproj o = List.filter (fun (_, k) -> k <> `R) (ev c o) in
              if wproj pre.order <> wproj post.order then None
              else
                let side_rw (su : Propagate.summary) =
                  match
                    (List.assoc_opt c su.Propagate.reads, List.assoc_opt c su.writes)
                  with
                  | Some r, Some w ->
                      if Deps.disjoint_under ~bounds r w then Some (Some (r, w)) else None
                  | _ -> Some None
                in
                match (side_rw pre, side_rw post) with
                | Some pre_rw, Some post_rw ->
                    Some { Certificate.w_container = c; pre_rw; post_rw }
                | _ -> None
          in
          let waivers = List.filter_map waiver_of reordered in
          let order_ok = List.length waivers = List.length reordered in
          match (List.rev !mismatches, wcr_ok, order_ok) with
          | [], true, true -> (
              let keep o = List.filter (fun (c, _) -> List.mem c shared) o in
              let cert =
                {
                  Certificate.xform = x.name;
                  site = Format.asprintf "%a" Transforms.Xform.pp_site site;
                  assumed = List.map (fun s -> (s, bounds s)) comparable;
                  entries = List.rev !entries;
                  order_pre = keep pre.order;
                  order_post = keep post.order;
                  waivers;
                }
              in
              if not (Certificate.check cert) then
                Unknown "certificate failed its own re-check"
              else
                match x.certify_hint with
                | Some (Known_unsound why) ->
                    Unknown
                      (Printf.sprintf
                         "summaries match but the transformation is marked unsound (%s)"
                         why)
                | _ -> Equivalent cert)
          | [], false, _ -> Unknown "write-conflict-resolution targets changed"
          | [], _, false -> Unknown "per-container access order changed"
          | ms, _, _ -> refute_or_unknown ~use_deps ~bounds ~symbols ~valuation ~declared ms)))

let certify ?use_intervals ?use_deps ?(symbols = []) g (x : Transforms.Xform.t) site =
  let g' = Graph.copy g in
  match x.apply g' site with
  | exception Transforms.Xform.Cannot_apply _ -> None
  | _ -> Some (decide ?use_intervals ?use_deps ~symbols g g' x site)
