(** Symbol interval and stride/congruence analysis over the interstate CFG.

    Symbols assigned on interstate edges (loop counters, alias chains) are
    invisible to per-state reasoning: a propagated summary mentioning such a
    symbol cannot be compared against declared program parameters, which
    leaves {!Equiv.certify} with an [Unknown] verdict. This pass runs the
    {!Fixpoint} solver with an interval + congruence domain whose endpoints
    are symbolic parameter expressions ([t] in [0 : T - 1], [t = 0 (mod 3)]),
    recovering exactly the facts needed to admit those symbols into the
    comparison: loop guards clamp endpoints, assignments evaluate in interval
    arithmetic, and widening drops endpoints that fail to stabilize. *)

open Sdfg
module Expr = Symbolic.Expr

(** The fact for one symbol. [cong = Some (0, c)] means "exactly [c]";
    [Some (m, r)] with [m > 0] means "congruent to [r] mod [m]"; [None] means
    no stride information. [lo]/[hi] are inclusive symbolic endpoints over
    program parameters; [None] is unbounded on that side. *)
type fact = { lo : Expr.t option; hi : Expr.t option; cong : (int * int) option }

val top : fact
val exactly : int -> fact

(** [true] when the fact carries any information at all. *)
val bounded : fact -> bool

val pp_fact : Format.formatter -> fact -> unit

(** The abstract environment at a program point: symbol -> fact, sorted;
    a missing symbol is {!top}; [None] is unreachable. *)
type env = (string * fact) list option

(** Raw per-state solution (used by the convergence regression tests). *)
val solve :
  ?symbols:(string * int) list ->
  ?max_passes:int ->
  ?widen_after:int ->
  Graph.t ->
  env Fixpoint.solution

(** Whole-program envelope: for each interstate-assigned symbol with at least
    one derivable bound, the join of its fact over all reachable program
    points — the range of values it takes anywhere during execution. *)
val facts : ?symbols:(string * int) list -> Graph.t -> (string * fact) list

(** Sound concrete bounds for the symbols of [facts], obtained by evaluating
    the symbolic endpoints under the base parameter bounds (caller-pinned
    symbols exact, all other parameters at least 1). Suitable for extending
    the bounds function handed to {!Symbolic.Subset.equal}. *)
val concrete_bounds :
  ?symbols:(string * int) list ->
  Graph.t ->
  (string * fact) list ->
  (string * (int option * int option)) list
