(** The unified static oracle: all passes over one program.

    Runs race detection ({!Races}), out-of-bounds checking ({!Bounds}),
    transient def-use hygiene ({!Defuse}), interstate liveness and
    reaching-definitions ({!Liveness}, {!Reachdef}) and the symbolic
    propagated footprint check ({!Footprint}) under shared symbol
    assumptions — sharpened by the {!Intervals} fixpoint where derivable —
    and returns the findings sorted by severity. [~carried:true] also
    reports sequential loop-carried dependences (see {!Races}); the
    default reports only definite defects, so every well-formed program —
    including sequential stencil sweeps — analyzes clean. *)

open Sdfg

val analyze :
  ?carried:bool -> ?symbols:(string * int) list -> Graph.t -> Report.finding list

(** {!analyze} plus the aggregated exact-dependence-tier coverage counters of
    the race pass (see {!Races.stats}). *)
val analyze_stats :
  ?carried:bool ->
  ?symbols:(string * int) list ->
  Graph.t ->
  Report.finding list * Races.stats
