(** Symbol assumptions shared by all static passes.

    The passes reason about concretized subsets, so they need values for the
    program's size symbols (the caller's assumptions, typically the same
    concretization the fuzzer uses), symbolic ranges for recognized for-loop
    variables, and candidate values for symbols assigned on interstate edges
    (alias chains). Anything left unresolved makes the affected memlet be
    skipped — the passes stay conservative rather than guess. *)

open Sdfg

type t = {
  env : int Symbolic.Expr.Env.t;  (** caller-provided symbol assumptions *)
  loops : (string * Symbolic.Subset.range) list;
      (** recognized loop variables with the symbolic range they span *)
  candidates : (string * int list) list;
      (** evaluable values of interstate-assigned symbols (capped) *)
  bounds : (string * (int option * int option)) list;
      (** the interval facts as passed in — the exact dependence tier uses
          them as constraints on symbols the environment leaves free *)
}

(** Bounds lookup for the exact dependence tier: the fact interval of a
    symbol, or [(None, None)] when nothing is known. *)
val bounds_fn : t -> string -> int option * int option

(** [facts] are concrete interval bounds inferred by the {!Intervals}
    fixpoint; each bounded symbol's endpoints join its candidate values for
    the sampling-based checks. *)
val make :
  ?symbols:(string * int) list ->
  ?facts:(string * (int option * int option)) list ->
  Graph.t ->
  t

(** [env] extended with every loop variable bound to its range start and
    every assigned symbol bound to its first candidate — a representative
    valuation for sampling-based checks. *)
val sample_env : t -> int Symbolic.Expr.Env.t

(** Widen [subset] over all loop variables occurring free in it (fixpoint,
    bounded); loop variables whose range could not be derived stay free. *)
val widen_loops : t -> Symbolic.Subset.t -> Symbolic.Subset.t
