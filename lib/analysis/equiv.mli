(** Symbolic translation validation of transformation instances.

    [certify g x site] decides whether applying [x] at [site] provably
    preserves the program's externally visible dataflow, by comparing the
    fully propagated read sets, write sets and per-container access-order
    signatures ({!Sdfg.Propagate.summarize}) of the program before and after
    the transformation, under the assumption that every declared program
    symbol is at least 1.

    The verdict lattice:

    - [Equivalent cert] — every external container's propagated read and
      write set is symbolically equal pre/post, write-conflict-resolution
      targets agree, and every surviving container keeps its access order.
      The certificate re-checks independently ({!Certificate.check}).
      {b Sound to act on}: the pipeline may skip fuzz trials.
    - [Refuted w] — a definite dataflow difference with a concrete symbol
      valuation (and, when element enumeration succeeds, one element of the
      symmetric set difference). The valuation seeds the fuzzer; a spurious
      refutation costs only trials that would have run anyway.
    - [Unknown] — the analysis could not decide (unpropagated control-flow
      symbols, ordering changes with equal sets, or a transformation marked
      {!Transforms.Xform.Known_unsound} whose summaries nevertheless match —
      the hint vetoes certification, never the other verdicts).

    [None] means the site went stale ([apply] raised [Cannot_apply]). *)

type witness = {
  valuation : (string * int) list;  (** concrete symbol values exhibiting the difference *)
  container : string;
  element : int list option;  (** one element of the symmetric set difference *)
  reason : string;
}

type verdict = Equivalent of Certificate.t | Refuted of witness | Unknown of string

val verdict_name : verdict -> string
val pp_witness : Format.formatter -> witness -> unit
val pp_verdict : Format.formatter -> verdict -> unit

(** [use_intervals] (default [true]) lets the {!Intervals} fixpoint admit
    interstate-assigned symbols into the summary comparison when the
    transformation provably leaves the interstate CFG untouched: such a
    symbol runs through the same value sequence on both sides, so it may be
    treated as an opaque bounded parameter. Disabling it reproduces the
    seed behaviour (those summaries stay [Unknown]); the [bench analysis]
    scenario measures the verdicts upgraded by this flag.

    [use_deps] (default [true]) enables the exact dependence engine
    ({!Deps}): summaries whose linear normal forms differ are still matched
    when both difference directions are provably empty (tile-boundary
    [min]/[max] redundancy), refutation witnesses come from a verified
    Fourier–Motzkin model before any grid enumeration, and per-container
    order changes are waived when reads are provably disjoint from writes.
    Disabling it reproduces the PR 6 behaviour; [bench deps] and
    [bench analysis] measure the verdicts this tier upgrades. *)
val certify :
  ?use_intervals:bool ->
  ?use_deps:bool ->
  ?symbols:(string * int) list ->
  Sdfg.Graph.t ->
  Transforms.Xform.t ->
  Transforms.Xform.site ->
  verdict option
