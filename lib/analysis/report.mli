(** Unified findings of the static dataflow oracle.

    Every pass of [lib/analysis] reports through this one type so the
    pipeline gate, the campaign evidence channel and the CLI pretty-printer
    share a single representation. *)

type pass =
  | Race  (** overlapping subsets under distinct map-parameter valuations *)
  | Out_of_bounds  (** propagated subset escapes the container shape *)
  | Use_before_def  (** read of a transient that is never written *)
  | Dead_write  (** write to a transient that is never read *)
  | Footprint
      (** propagated whole-program footprint provably escapes the container
          shape for every admissible symbol value (see {!Footprint}) *)
  | Change_set
      (** a transformation's declared change set under-approximates the true
          pre/post graph diff (see {!Audit}) *)

type severity = Error | Warning

type finding = {
  pass : pass;
  severity : severity;
  state : int;  (** state id; [-1] for program-level findings *)
  node : int;  (** offending node id (scope entry, access); [-1] if none *)
  container : string;
  subsets : string list;  (** offending / overlapping subsets, printable *)
  detail : string;  (** human-readable explanation, includes valuations *)
  meta : (string * string) list;
      (** machine-readable key/value evidence: exact-tier witnesses
          ([dep_witness]), decided/sampled pair counters ([dep_decided], …).
          Participates in {!compare_findings} so reruns stay byte-identical. *)
}

val make :
  pass:pass ->
  severity:severity ->
  ?state:int ->
  ?node:int ->
  container:string ->
  ?subsets:string list ->
  ?meta:(string * string) list ->
  string ->
  finding

(** Append metadata entries to a finding. *)
val with_meta : (string * string) list -> finding -> finding

(** Look up one metadata key. *)
val meta_find : string -> finding -> string option

val pass_name : pass -> string
val severity_name : severity -> string
val pp : Format.formatter -> finding -> unit
val to_string : finding -> string

(** A total order over findings: severity-major (errors first), then
    state/container/node, with pass, subsets and detail as tie-breaks. Equal
    keys imply equal findings. *)
val compare_findings : finding -> finding -> int

(** Sorted by {!compare_findings} with exact duplicates removed — the output
    is deterministic regardless of the order passes produced the findings. *)
val sort : finding list -> finding list

(** Stable key used by the delta verifier: pass, container and state — node
    ids and subset strings are not stable across a transformation. *)
val fingerprint : finding -> string

(** Findings of [after] whose fingerprint does not occur in [before]:
    the findings a transformation {e introduced}. *)
val new_findings : before:finding list -> after:finding list -> finding list
