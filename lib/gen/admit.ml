type reject =
  | Invalid of Sdfg.Validate.error list
  | Static of Analysis.Report.finding list
  | Fault of string

let reject_to_string = function
  | Invalid errs ->
      Printf.sprintf "invalid: %s"
        (String.concat "; " (List.map (fun e -> Format.asprintf "%a" Sdfg.Validate.pp_error e) errs))
  | Static findings ->
      Printf.sprintf "static: %s"
        (String.concat "; " (List.map Analysis.Report.to_string findings))
  | Fault msg -> Printf.sprintf "fault: %s" msg

(* Small extents keep the smoke run cheap while leaving every map at least
   a few iterations; loop variables are also free symbols but their initial
   binding is overwritten by the entry assignment before any use. *)
let concretize g = List.map (fun s -> (s, 6)) (Sdfg.Graph.all_free_syms g)

let definite findings =
  List.filter (fun (f : Analysis.Report.finding) -> f.severity = Analysis.Report.Error) findings

let check ?(run = true) (c : Generate.t) =
  let g = c.Generate.graph in
  match Sdfg.Validate.check g with
  | _ :: _ as errs -> Error (Invalid errs)
  | [] -> (
      let symbols = concretize g in
      match definite (Analysis.Oracle.analyze ~symbols g) with
      | _ :: _ as findings -> Error (Static findings)
      | [] ->
          if not run then Ok ()
          else begin
            match Interp.Exec.run g ~symbols ~inputs:[] with
            | Ok _ -> Ok ()
            | Error fault -> Error (Fault (Interp.Exec.fault_to_string fault))
          end)

type stats = {
  style : string;
  generated : int;
  admitted : int;
  rejected_invalid : int;
  rejected_static : int;
  rejected_fault : int;
  by_rule : (string * int) list;
}

let pp_stats fmt s =
  Format.fprintf fmt "style %-8s generated %3d admitted %3d (%.0f%%) invalid %d static %d fault %d"
    s.style s.generated s.admitted
    (if s.generated = 0 then 0.0 else 100.0 *. float_of_int s.admitted /. float_of_int s.generated)
    s.rejected_invalid s.rejected_static s.rejected_fault;
  if s.by_rule <> [] then begin
    Format.fprintf fmt " rejected-by-rule:";
    List.iter (fun (r, n) -> Format.fprintf fmt " %s=%d" r n) s.by_rule
  end

let batch ?budget ?run ?max_attempts ~(style : Styles.t) ~seed ~n () =
  let max_attempts = match max_attempts with Some m -> m | None -> 10 * max n 1 in
  let admitted = ref [] in
  let generated = ref 0 in
  let inv = ref 0 and sta = ref 0 and fau = ref 0 in
  let by_rule = Hashtbl.create 8 in
  let idx = ref 0 in
  while List.length !admitted < n && !generated < max_attempts do
    let c = Generate.candidate ?budget ~style ~seed !idx in
    incr generated;
    (match check ?run c with
    | Ok () -> admitted := c :: !admitted
    | Error reject ->
        (match reject with
        | Invalid _ -> incr inv
        | Static _ -> incr sta
        | Fault _ -> incr fau);
        List.sort_uniq compare c.Generate.rules
        |> List.iter (fun r ->
               let k = Grammar.name r in
               Hashtbl.replace by_rule k (1 + Option.value ~default:0 (Hashtbl.find_opt by_rule k))));
    incr idx
  done;
  let by_rule = Hashtbl.fold (fun k v acc -> (k, v) :: acc) by_rule [] |> List.sort compare in
  ( List.rev !admitted,
    {
      style = style.Styles.name;
      generated = !generated;
      admitted = List.length !admitted;
      rejected_invalid = !inv;
      rejected_static = !sta;
      rejected_fault = !fau;
      by_rule;
    } )
