open Grammar

type t = {
  name : string;
  description : string;
  weights : (int * Grammar.rule) list;
  targets : string list;
}

(* Weight profiles sum differently per style; only the ratios matter. Every
   style carries a small risky-rule weight so the admission gate's rejection
   path stays exercised (and measured) on every batch. *)

let weigh overrides =
  List.map (fun r -> ((match List.assoc_opt r overrides with Some w -> w | None -> 0), r)) Grammar.all

let fusion =
  {
    name = "fusion";
    description = "producer-consumer chains and nested scopes for fusion/tiling/collapse";
    weights =
      weigh
        [
          (Fuse_chain, 6);
          (Nested_map, 4);
          (Elementwise, 3);
          (Copy_chain, 1);
          (Risky_read, 1);
        ];
    targets = [ "MapFusion"; "MapTiling"; "MapCollapse"; "Vectorization" ];
  }

let gpu =
  {
    name = "gpu";
    description = "host-device copy chains and parallel kernels for GPU extraction";
    weights =
      weigh
        [
          (Parallel_kernel, 5);
          (Device_roundtrip, 4);
          (Elementwise, 2);
          (Copy_chain, 2);
          (Risky_race, 1);
        ];
    targets = [ "GpuKernelExtraction" ];
  }

let reduce =
  {
    name = "reduce";
    description = "reduction trees and WCR accumulation for map-reduce fusion";
    weights =
      weigh
        [ (Reduce_tree, 5); (Wcr_accumulate, 4); (Elementwise, 2); (Risky_read, 1) ];
    targets = [ "MapReduceFusion"; "Vectorization" ];
  }

let loops =
  {
    name = "loops";
    description = "multi-state constant-trip loops for peeling/unrolling/state fusion";
    weights =
      weigh
        [
          (For_loop, 5);
          (State_split, 3);
          (Symbol_loop, 2);
          (Elementwise, 3);
          (Risky_race, 1);
        ];
    targets = [ "LoopPeeling"; "LoopUnrolling"; "StateFusion" ];
  }

let mixed =
  {
    name = "mixed";
    description = "uniform blend of every benign rule plus each defect kind";
    weights =
      weigh
        [
          (Elementwise, 4);
          (Fuse_chain, 4);
          (Nested_map, 4);
          (Reduce_tree, 4);
          (Wcr_accumulate, 4);
          (Copy_chain, 4);
          (Device_roundtrip, 4);
          (Parallel_kernel, 4);
          (For_loop, 4);
          (Symbol_loop, 4);
          (State_split, 4);
          (Risky_read, 1);
          (Risky_race, 1);
          (Risky_rank, 1);
        ];
    targets = [ "MapFusion"; "Vectorization"; "StateFusion" ];
  }

let all = [ fusion; gpu; reduce; loops; mixed ]
let names = List.map (fun s -> s.name) all
let by_name n = List.find_opt (fun s -> s.name = n) all

let target_catalog () =
  Transforms.Registry.all_correct ()
  @ [
      Transforms.Gpu_kernel_extraction.make Transforms.Gpu_kernel_extraction.Correct;
      Transforms.Loop_unrolling.make Transforms.Loop_unrolling.Correct;
    ]

let match_counts g =
  List.filter_map
    (fun (x : Transforms.Xform.t) ->
      match List.length (x.find g) with 0 -> None | n -> Some (x.name, n))
    (target_catalog ())
  |> List.sort compare
