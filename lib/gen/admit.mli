(** The admission gate: no generated program reaches a campaign unvetted.

    A candidate is admitted when (1) {!Sdfg.Validate.check} returns no
    structural errors, (2) the static oracle ({!Analysis.Oracle.analyze})
    reports no definite ([Error]-severity) finding — warnings such as dead
    transient writes are tolerated, matching the lint gate — and (3) a
    smoke execution over zero-filled inputs completes without fault. The
    full (sorted, deduplicated) error list is kept on rejection so batch
    statistics can attribute rejections to the grammar rules that emitted
    the offending shape. *)

type reject =
  | Invalid of Sdfg.Validate.error list  (** structural validation failed *)
  | Static of Analysis.Report.finding list  (** definite oracle findings *)
  | Fault of string  (** smoke execution faulted *)

val reject_to_string : reject -> string

(** Symbol binding used for analysis and the smoke run: every free symbol of
    the graph at a small concrete extent. *)
val concretize : Sdfg.Graph.t -> (string * int) list

(** [check c] vets one candidate. [run:false] skips the smoke execution
    (used by bench to price the static-only gate). *)
val check : ?run:bool -> Generate.t -> (unit, reject) result

(** Per-style batch statistics. [by_rule] counts, for each grammar rule, how
    many rejected candidates had applied that rule — risky rules should
    dominate. *)
type stats = {
  style : string;
  generated : int;
  admitted : int;
  rejected_invalid : int;
  rejected_static : int;
  rejected_fault : int;
  by_rule : (string * int) list;
}

val pp_stats : Format.formatter -> stats -> unit

(** [batch ~style ~seed ~n ()] walks candidate indices [0, 1, …] until [n]
    candidates are admitted (or [max_attempts], default [10 * n], have been
    generated) and returns the admitted candidates in index order plus the
    batch statistics. Deterministic in [(style, seed, n)]. *)
val batch :
  ?budget:Grammar.budget ->
  ?run:bool ->
  ?max_attempts:int ->
  style:Styles.t ->
  seed:int ->
  n:int ->
  unit ->
  Generate.t list * stats
