(** Deterministic pseudo-random stream for program generation.

    A self-contained splitmix64 implementation so generated programs are
    byte-identical across OCaml versions and machines — the generator's
    determinism contract must not depend on [Stdlib.Random]'s unspecified
    algorithm. Streams are cheap values; {!split} derives an independent
    stream so sub-generators (one per candidate) cannot perturb each
    other's sequences. *)

type t

(** Stream seeded from an integer (any value, including negatives). *)
val create : int -> t

(** [split t salt] is a fresh stream deterministically derived from [t]'s
    seed and [salt], independent of how much of [t] has been consumed. *)
val split : t -> int -> t

(** Next raw 64-bit draw. *)
val next : t -> int64

(** Uniform draw in [\[0, bound)]. @raise Invalid_argument if [bound <= 0]. *)
val int : t -> int -> int

val bool : t -> bool

(** Uniform element of a non-empty list. *)
val choice : t -> 'a list -> 'a

(** Weighted draw: probability of each element is proportional to its
    (positive) integer weight; zero-weight entries are never drawn.
    @raise Invalid_argument if the total weight is not positive. *)
val weighted : t -> (int * 'a) list -> 'a
