(** The typed grammar over the SDFG IR.

    A generated program is a sequence of {e fragments}, each produced by one
    production rule. Every rule emits a shape some part of the pipeline
    cares about: most are the exact patterns the transformation catalog's
    [find] functions match (nested map scopes for collapse/tiling, a
    producer→transient→consumer chain for fusion, host↔device copy chains
    for GPU kernel extraction, reduction trees for map-reduce fusion,
    canonical for-loops for peeling/unrolling), and a small {e risky}
    minority deliberately emits defective shapes — out-of-bounds reads,
    parallel write races, rank-mismatched memlets — to exercise the
    admission gate's rejection and attribution paths. *)

type rule =
  | Elementwise  (** one mapped tasklet, array → fresh transient *)
  | Fuse_chain  (** producer map → single-use transient → consumer map (MapFusion) *)
  | Nested_map  (** perfectly nested 2-D map scope (MapCollapse / MapTiling) *)
  | Reduce_tree  (** square/scale map into a transient, then a Reduce library node (MapReduceFusion) *)
  | Wcr_accumulate  (** mapped tasklet accumulating into a scalar via WCR *)
  | Copy_chain  (** whole-array copy into a transient (RedundantArrayRemoval) *)
  | Device_roundtrip  (** host→GPU copy, GPU-scheduled map, GPU→host copy *)
  | Parallel_kernel  (** top-level [Parallel]-schedule map (GpuKernelExtraction) *)
  | For_loop  (** canonical constant-trip for-loop states (LoopPeeling / LoopUnrolling) *)
  | Symbol_loop  (** interstate symbol assignment read by a later tasklet *)
  | State_split  (** unconditional assign-free state break (StateFusion) *)
  | Risky_read  (** off-by-one read past the array end — admission must reject *)
  | Risky_race  (** parallel map writing one element without WCR — admission must reject *)
  | Risky_rank  (** memlet whose rank contradicts the container — validation must reject *)

val all : rule list

val name : rule -> string
val of_name : string -> rule option

(** Rules that deliberately emit defective programs. *)
val is_risky : rule -> bool

(** Size budget for one candidate program: how many fragments (production
    rule applications) it may contain. Control-flow rules ([For_loop],
    [State_split], …) also grow the state machine; the fragment count is
    the one knob because every rule costs O(1) states. *)
type budget = { min_fragments : int; max_fragments : int }

val default_budget : budget

(** [budget n] caps candidates at [n] fragments (and at least
    [min 2 n]). @raise Invalid_argument if [n < 1]. *)
val budget : int -> budget
