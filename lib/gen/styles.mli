(** Composition styles: named weight profiles over the grammar.

    Following grammar-level composition-style steering (PAPERS.md), a style
    biases production-rule weights toward the shapes one family of
    transformations actually matches, turning "generate random programs"
    into "generate programs this optimization will fire on". Each style
    names the transformations it targets; the style-effectiveness floor
    (tests, CI [gen-smoke]) demands that a batch of admitted candidates
    yields at least one match of each target. *)

type t = {
  name : string;  (** CLI / campaign identifier; no underscores (parsed names) *)
  description : string;
  weights : (int * Grammar.rule) list;  (** production-rule weights, all rules listed *)
  targets : string list;  (** transformation names this style steers toward *)
}

(** All styles, in a fixed order: fusion, gpu, reduce, loops, mixed. *)
val all : t list

val names : string list
val by_name : string -> t option

(** The transformation catalog styles target: the correct registry set plus
    the GPU-extraction and loop-unrolling transformations the registry does
    not carry. Every [targets] entry of every style names a member. *)
val target_catalog : unit -> Transforms.Xform.t list

(** [match_counts g] counts [find] sites of each catalog transformation on
    one graph; only non-zero entries are returned, sorted by name. *)
val match_counts : Sdfg.Graph.t -> (string * int) list
