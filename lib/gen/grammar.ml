type rule =
  | Elementwise
  | Fuse_chain
  | Nested_map
  | Reduce_tree
  | Wcr_accumulate
  | Copy_chain
  | Device_roundtrip
  | Parallel_kernel
  | For_loop
  | Symbol_loop
  | State_split
  | Risky_read
  | Risky_race
  | Risky_rank

let all =
  [
    Elementwise;
    Fuse_chain;
    Nested_map;
    Reduce_tree;
    Wcr_accumulate;
    Copy_chain;
    Device_roundtrip;
    Parallel_kernel;
    For_loop;
    Symbol_loop;
    State_split;
    Risky_read;
    Risky_race;
    Risky_rank;
  ]

let name = function
  | Elementwise -> "elementwise"
  | Fuse_chain -> "fuse_chain"
  | Nested_map -> "nested_map"
  | Reduce_tree -> "reduce_tree"
  | Wcr_accumulate -> "wcr_accumulate"
  | Copy_chain -> "copy_chain"
  | Device_roundtrip -> "device_roundtrip"
  | Parallel_kernel -> "parallel_kernel"
  | For_loop -> "for_loop"
  | Symbol_loop -> "symbol_loop"
  | State_split -> "state_split"
  | Risky_read -> "risky_read"
  | Risky_race -> "risky_race"
  | Risky_rank -> "risky_rank"

let of_name s = List.find_opt (fun r -> name r = s) all
let is_risky = function Risky_read | Risky_race | Risky_rank -> true | _ -> false

type budget = { min_fragments : int; max_fragments : int }

let default_budget = { min_fragments = 2; max_fragments = 5 }

let budget n =
  if n < 1 then invalid_arg "Grammar.budget: need at least one fragment";
  { min_fragments = min 2 n; max_fragments = n }
