open Sdfg
module B = Builder.Build
module Ns = Builder.Build.Namespace

let sym = Symbolic.Expr.sym
let mem = B.mem

type t = {
  name : string;
  graph : Graph.t;
  style : string;
  seed : int;
  index : int;
  rules : Grammar.rule list;
}

let candidate_name ~style ~seed ~index = Printf.sprintf "gen_%s_s%d_c%d" style seed index

let parse_name n =
  match String.split_on_char '_' n with
  | [ "gen"; style; s; c ]
    when String.length s > 1 && s.[0] = 's' && String.length c > 1 && c.[0] = 'c' -> (
      match
        ( int_of_string_opt (String.sub s 1 (String.length s - 1)),
          int_of_string_opt (String.sub c 1 (String.length c - 1)) )
      with
      | Some seed, Some index -> Some (style, seed, index)
      | _ -> None)
  | _ -> None

(* FNV-1a over a string, for machine-independent per-candidate stream salts
   (Hashtbl.hash is not part of the determinism contract). *)
let fnv1a s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun ch ->
      h := Int64.logxor !h (Int64.of_int (Char.code ch));
      h := Int64.mul !h 0x100000001b3L)
    s;
  Int64.to_int (Int64.logand !h 0x3FFFFFFFFFFFFFFFL)

(* Readable containers carry the access node that last wrote them, so a
   read in the same state reuses that node (read-after-write chaining, the
   [input_nodes] convention of Builder.Build) instead of racing it through
   a second access node. Cross-state reads use a fresh node; the state
   boundary orders them. *)
type slot = { data : string; written : (int * int) option (* state, access node *) }

type ctx = {
  g : Graph.t;
  ns : Ns.t;
  rng : Rng.t;
  mutable cur : int;  (** tail state: where the next dataflow fragment lands *)
  mutable vec1 : slot list;  (** host 1-D [N] containers readable by later fragments *)
  mutable mat2 : slot list;  (** host 2-D [N,N] *)
  mutable scalars : slot list;  (** host scalars *)
  mutable last_out : string option;  (** most recent host container written *)
  mutable rules : Grammar.rule list;  (** reverse emission order *)
}

let state ctx = Graph.state ctx.g ctx.cur

let fresh_vec ?(transient = true) ?(storage = Graph.Host) ctx base =
  let n = Ns.fresh ctx.ns base in
  Graph.add_array ctx.g ~transient ~storage n Dtype.F64 [ sym "N" ];
  n

let fresh_mat ?(transient = true) ctx base =
  let n = Ns.fresh ctx.ns base in
  Graph.add_array ctx.g ~transient n Dtype.F64 [ sym "N"; sym "N" ];
  n

let pick ctx slots = Rng.choice ctx.rng slots

(* [input_nodes] entry for a slot read in the current state. *)
let chain ctx slot =
  match slot.written with Some (s, node) when s = ctx.cur -> [ (slot.data, node) ] | _ -> []

let pool_vec ctx m data =
  ctx.vec1 <- ctx.vec1 @ [ { data; written = Some (ctx.cur, List.assoc data m.B.out_access) } ];
  ctx.last_out <- Some data

(* ---- production rules ------------------------------------------------- *)

let unary_codes =
  [
    "o = xv * xv + 0.5";
    "o = abs(xv) + 0.25";
    "o = tanh(xv)";
    "o = max(xv, 0.0) - 0.125";
    "o = select(xv < 0.5, xv, 0.5 * xv + 0.25)";
  ]

let binary_codes = [ "o = xv + yv"; "o = xv * yv + 0.5"; "o = min(xv, yv) + 0.125" ]

(* Fragment results are external (non-transient): differential testing
   compares only non-transient system state, so a result nobody reads later
   would otherwise be a dead transient — and a fault seeded into the fragment
   that produced it would be semantically invisible. True intermediates that
   are read by construction (fuse_tmp, sq, device arrays) stay transient so
   the transformation patterns that require transients keep matching. *)
let emit_elementwise ctx =
  let a = pick ctx ctx.vec1 in
  let out = fresh_vec ~transient:false ctx "t" in
  let kind = Rng.int ctx.rng 3 in
  let inputs, input_nodes, code =
    if kind = 1 && List.exists (fun s -> s.data <> a.data) ctx.vec1 then
      let b = pick ctx (List.filter (fun s -> s.data <> a.data) ctx.vec1) in
      ( [ ("xv", mem a.data "i"); ("yv", mem b.data "i") ],
        chain ctx a @ chain ctx b,
        Rng.choice ctx.rng binary_codes )
    else if kind = 2 then
      let c = pick ctx ctx.scalars in
      ( [ ("xv", mem a.data "i"); ("cv", mem c.data "") ],
        chain ctx a @ chain ctx c,
        "o = cv * xv + 0.5" )
    else ([ ("xv", mem a.data "i") ], chain ctx a, Rng.choice ctx.rng unary_codes)
  in
  let m =
    B.mapped_tasklet ctx.g (state ctx) ~label:(Ns.fresh ctx.ns "ew")
      ~map:[ ("i", "0:N-1") ]
      ~input_nodes ~inputs ~code
      ~outputs:[ ("o", mem out "i") ]
      ()
  in
  pool_vec ctx m out

(* MapFusion wants: producer exit → transient access (exactly one in- and one
   out-edge) → consumer entry, identical params/ranges, point-wise read. The
   intermediate is deliberately NOT pooled: a later reader would add an edge
   and break the single-use pattern. *)
let emit_fuse_chain ctx =
  let a = pick ctx ctx.vec1 in
  let tmp = fresh_vec ctx "fuse_tmp" in
  let out = fresh_vec ~transient:false ctx "t" in
  let m1 =
    B.mapped_tasklet ctx.g (state ctx) ~label:(Ns.fresh ctx.ns "producer")
      ~map:[ ("i", "0:N-1") ]
      ~input_nodes:(chain ctx a)
      ~inputs:[ ("xv", mem a.data "i") ]
      ~code:"o = xv * 2.0 + 1.0"
      ~outputs:[ ("o", mem tmp "i") ]
      ()
  in
  let m2 =
    B.mapped_tasklet ctx.g (state ctx) ~label:(Ns.fresh ctx.ns "consumer")
      ~map:[ ("i", "0:N-1") ]
      ~input_nodes:[ (tmp, List.assoc tmp m1.B.out_access) ]
      ~inputs:[ ("tv", mem tmp "i") ]
      ~code:(Rng.choice ctx.rng [ "o = tv * 0.5"; "o = tanh(tv)"; "o = tv + 0.25" ])
      ~outputs:[ ("o", mem out "i") ]
      ()
  in
  pool_vec ctx m2 out

(* Perfectly nested 2-D scope, hand-wired the way MapCollapse's find expects:
   every out-edge of the outer entry reaches the inner entry, every in-edge
   of the outer exit comes from the inner exit, and the inner range is
   independent of the outer parameter. *)
let emit_nested_map ctx =
  let a = pick ctx ctx.mat2 in
  let out = fresh_mat ~transient:false ctx "grid" in
  let st = state ctx in
  let range =
    match Symbolic.Subset.of_string "0:N-1" with [ r ] -> r | _ -> assert false
  in
  let outer =
    State.add_node st
      (Node.Map_entry
         { label = Ns.fresh ctx.ns "outer"; params = [ "i" ]; ranges = [ range ]; schedule = Node.Sequential })
  in
  let outer_exit = State.add_node st (Node.Map_exit { entry = outer }) in
  let inner =
    State.add_node st
      (Node.Map_entry
         { label = Ns.fresh ctx.ns "inner"; params = [ "j" ]; ranges = [ range ]; schedule = Node.Sequential })
  in
  let inner_exit = State.add_node st (Node.Map_exit { entry = inner }) in
  let code = Rng.choice ctx.rng [ "o = av * 0.5 + 0.25"; "o = av * av"; "o = abs(av) + 0.5" ] in
  let tk = State.add_node st (Node.tasklet (Ns.fresh ctx.ns "cell") code) in
  let acc_a = State.add_node st (Node.Access a.data) in
  let acc_o = State.add_node st (Node.Access out) in
  let ic c = "IN_" ^ c and oc c = "OUT_" ^ c in
  ignore (State.add_edge st ~dst_conn:(ic a.data) ~memlet:(B.full ctx.g a.data) acc_a outer);
  ignore
    (State.add_edge st ~src_conn:(oc a.data) ~dst_conn:(ic a.data)
       ~memlet:(mem a.data "i, 0:N-1") outer inner);
  ignore (State.add_edge st ~src_conn:(oc a.data) ~dst_conn:"av" ~memlet:(mem a.data "i, j") inner tk);
  ignore (State.add_edge st ~src_conn:"o" ~dst_conn:(ic out) ~memlet:(mem out "i, j") tk inner_exit);
  ignore
    (State.add_edge st ~src_conn:(oc out) ~dst_conn:(ic out) ~memlet:(mem out "i, 0:N-1")
       inner_exit outer_exit);
  ignore (State.add_edge st ~src_conn:(oc out) ~memlet:(B.full ctx.g out) outer_exit acc_o);
  ctx.mat2 <- ctx.mat2 @ [ { data = out; written = Some (ctx.cur, acc_o) } ];
  ctx.last_out <- Some out

(* Square/scale into a transient, then a Reduce library node over it: the
   MapReduceFusion pattern (cf. the l2norm workload). *)
let emit_reduce_tree ctx =
  let a = pick ctx ctx.vec1 in
  let tmp = fresh_vec ctx "sq" in
  let acc = Ns.fresh ctx.ns "acc" in
  Graph.add_scalar ctx.g ~transient:false acc Dtype.F64;
  let m1 =
    B.mapped_tasklet ctx.g (state ctx) ~label:(Ns.fresh ctx.ns "square")
      ~map:[ ("i", "0:N-1") ]
      ~input_nodes:(chain ctx a)
      ~inputs:[ ("xv", mem a.data "i") ]
      ~code:(Rng.choice ctx.rng [ "o = xv * xv"; "o = abs(xv)"; "o = xv * 0.5 + 0.25" ])
      ~outputs:[ ("o", mem tmp "i") ]
      ()
  in
  ignore
    (B.library ctx.g (state ctx) ~label:(Ns.fresh ctx.ns "sum") ~kind:(Node.Reduce (Memlet.Wcr_sum, [ 0 ]))
       ~input_nodes:[ (tmp, List.assoc tmp m1.B.out_access) ]
       ~inputs:[ ("in", mem tmp "0:N-1") ]
       ~outputs:[ ("out", mem acc "") ]
       ());
  ctx.scalars <- ctx.scalars @ [ { data = acc; written = None } ];
  ctx.last_out <- Some acc

(* WCR accumulation into an external scalar (external: zero-initialized by
   the interpreter, and exempt from transient def-use hygiene). *)
let emit_wcr_accumulate ctx =
  let a = pick ctx ctx.vec1 in
  let w = Ns.fresh ctx.ns "w" in
  Graph.add_scalar ctx.g ~transient:false w Dtype.F64;
  ignore
    (B.mapped_tasklet ctx.g (state ctx) ~label:(Ns.fresh ctx.ns "accum")
       ~map:[ ("i", "0:N-1") ]
       ~input_nodes:(chain ctx a)
       ~inputs:[ ("xv", mem a.data "i") ]
       ~code:(Rng.choice ctx.rng [ "o = xv"; "o = xv * xv"; "o = abs(xv)" ])
       ~outputs:[ ("o", mem ~wcr:Memlet.Wcr_sum w "") ]
       ());
  ctx.last_out <- Some w

(* Whole-array copy into a transient (the RedundantArrayRemoval site when
   the source is read-only), plus a consumer reading the copy: the copy must
   stay transient for the pattern, and it must be read so a fault seeded
   into the copy path reaches observable state. *)
let emit_copy_chain ctx =
  let a = pick ctx ctx.vec1 in
  let c = fresh_vec ctx "copy" in
  let out = fresh_vec ~transient:false ctx "copy_use" in
  let src_node = match chain ctx a with [ (_, n) ] -> Some n | _ -> None in
  let _, dst = B.copy ctx.g (state ctx) ~src:a.data ~dst:c ?src_node () in
  let m =
    B.mapped_tasklet ctx.g (state ctx) ~label:(Ns.fresh ctx.ns "use_copy")
      ~map:[ ("i", "0:N-1") ]
      ~input_nodes:[ (c, dst) ]
      ~inputs:[ ("xv", mem c "i") ]
      ~code:(Rng.choice ctx.rng [ "o = xv + 0.5"; "o = xv * 2.0" ])
      ~outputs:[ ("o", mem out "i") ]
      ()
  in
  pool_vec ctx m out

(* host → device copy, GPU-scheduled map over device arrays, device → host
   copy back: the shape GpuKernelExtraction emits, built directly. *)
let emit_device_roundtrip ctx =
  let a = pick ctx ctx.vec1 in
  let xd = fresh_vec ~storage:Graph.Gpu ctx "xdev" in
  let yd = fresh_vec ~storage:Graph.Gpu ctx "ydev" in
  let out = fresh_vec ~transient:false ctx "host_out" in
  let src_node = match chain ctx a with [ (_, n) ] -> Some n | _ -> None in
  let _, xd_node = B.copy ctx.g (state ctx) ~src:a.data ~dst:xd ?src_node () in
  let m =
    B.mapped_tasklet ctx.g (state ctx) ~label:(Ns.fresh ctx.ns "kernel") ~schedule:Node.Gpu_device
      ~map:[ ("i", "0:N-1") ]
      ~input_nodes:[ (xd, xd_node) ]
      ~inputs:[ ("dv", mem xd "i") ]
      ~code:(Rng.choice ctx.rng [ "o = dv * 2.0"; "o = dv + 1.0"; "o = dv * dv" ])
      ~outputs:[ ("o", mem yd "i") ]
      ()
  in
  let _, out_node =
    B.copy ctx.g (state ctx) ~src:yd ~dst:out ~src_node:(List.assoc yd m.B.out_access) ()
  in
  ctx.vec1 <- ctx.vec1 @ [ { data = out; written = Some (ctx.cur, out_node) } ];
  ctx.last_out <- Some out

(* Top-level Parallel-schedule map between access nodes: the
   GpuKernelExtraction site. *)
let emit_parallel_kernel ctx =
  let a = pick ctx ctx.vec1 in
  let out = fresh_vec ~transient:false ctx "pk" in
  let m =
    B.mapped_tasklet ctx.g (state ctx) ~label:(Ns.fresh ctx.ns "pkernel") ~schedule:Node.Parallel
      ~map:[ ("i", "0:N-1") ]
      ~input_nodes:(chain ctx a)
      ~inputs:[ ("xv", mem a.data "i") ]
      ~code:(Rng.choice ctx.rng unary_codes)
      ~outputs:[ ("o", mem out "i") ]
      ()
  in
  pool_vec ctx m out

(* Canonical constant-trip for-loop (Builder.Build.for_loop, the pattern
   Xform.find_loops recognizes); the body references the loop variable so
   iterations are distinguishable. *)
let emit_for_loop ctx =
  let k = Ns.fresh ctx.ns "k" in
  let trips = 2 + Rng.int ctx.rng 3 in
  let _, body, after =
    B.for_loop ctx.g ~entry_from:ctx.cur ~var:k ~init:(Symbolic.Expr.int 0)
      ~cond:(Symbolic.Cond.Lt (sym k, Symbolic.Expr.int trips))
      ~update:(Symbolic.Expr.add (sym k) Symbolic.Expr.one)
      ~body_label:(Ns.fresh ctx.ns "loop_body")
      ~after_label:(Ns.fresh ctx.ns "loop_after")
  in
  let a = pick ctx ctx.vec1 in
  let out = fresh_vec ~transient:false ctx "iter" in
  ignore
    (B.mapped_tasklet ctx.g (Graph.state ctx.g body) ~label:(Ns.fresh ctx.ns "step")
       ~map:[ ("i", "0:N-1") ]
       ~inputs:[ ("xv", mem a.data "i") ]
       ~code:(Printf.sprintf "o = xv + %s" k)
       ~outputs:[ ("o", mem out "i") ]
       ());
  ctx.cur <- after;
  ctx.vec1 <- ctx.vec1 @ [ { data = out; written = None } ];
  ctx.last_out <- Some out

(* Interstate symbol assignment consumed by a later tasklet. *)
let emit_symbol_loop ctx =
  let s = Ns.fresh ctx.ns "sbound" in
  let next = Graph.add_state ctx.g (Ns.fresh ctx.ns "sym_state") in
  ignore
    (Graph.add_istate_edge ctx.g
       ~assigns:[ (s, Symbolic.Expr.sub (sym "N") Symbolic.Expr.one) ]
       ctx.cur next);
  ctx.cur <- next;
  let a = pick ctx ctx.vec1 in
  let out = fresh_vec ~transient:false ctx "sym_out" in
  let m =
    B.mapped_tasklet ctx.g (state ctx) ~label:(Ns.fresh ctx.ns "scaled")
      ~map:[ ("i", "0:N-1") ]
      ~inputs:[ ("xv", mem a.data "i") ]
      ~code:(Printf.sprintf "o = xv * 0.5 + %s" s)
      ~outputs:[ ("o", mem out "i") ]
      ()
  in
  pool_vec ctx m out

(* Unconditional, assign-free state break: the StateFusion site. *)
let emit_state_split ctx =
  let next = Graph.add_state_after ctx.g ctx.cur (Ns.fresh ctx.ns "split") in
  ctx.cur <- next

(* ---- deliberately defective rules ------------------------------------- *)

(* Reads one past the end: i+1 reaches N on an [N]-shaped array. The static
   oracle's bounds pass must reject this at admission. *)
let emit_risky_read ctx =
  let a = pick ctx ctx.vec1 in
  let out = fresh_vec ctx "oob" in
  ignore
    (B.mapped_tasklet ctx.g (state ctx) ~label:(Ns.fresh ctx.ns "off_end")
       ~map:[ ("i", "0:N-1") ]
       ~input_nodes:(chain ctx a)
       ~inputs:[ ("xv", mem a.data "i+1") ]
       ~code:"o = xv"
       ~outputs:[ ("o", mem out "i") ]
       ());
  ctx.last_out <- Some out

(* Every parallel iteration writes element 0 without WCR: a definite
   write-write race the exact dependence tier must reject. *)
let emit_risky_race ctx =
  let a = pick ctx ctx.vec1 in
  let out = fresh_vec ctx "clash" in
  ignore
    (B.mapped_tasklet ctx.g (state ctx) ~label:(Ns.fresh ctx.ns "collide") ~schedule:Node.Parallel
       ~map:[ ("i", "0:N-1") ]
       ~input_nodes:(chain ctx a)
       ~inputs:[ ("xv", mem a.data "i") ]
       ~code:"o = xv"
       ~outputs:[ ("o", mem out "0") ]
       ());
  ctx.last_out <- Some out

(* Memlet rank contradicts the container declaration: structural validation
   must reject before any analysis runs. *)
let emit_risky_rank ctx =
  let a = pick ctx ctx.mat2 in
  let out = fresh_mat ctx "badrank" in
  let st = state ctx in
  let src = State.add_node st (Node.Access a.data) in
  let dst = State.add_node st (Node.Access out) in
  ignore
    (State.add_edge st
       ~memlet:(mem a.data "0:N-1") (* 1-D subset on a 2-D container *)
       ~dst_memlet:(B.full ctx.g out) src dst)

let emit ctx rule =
  ctx.rules <- rule :: ctx.rules;
  match (rule : Grammar.rule) with
  | Grammar.Elementwise -> emit_elementwise ctx
  | Grammar.Fuse_chain -> emit_fuse_chain ctx
  | Grammar.Nested_map -> emit_nested_map ctx
  | Grammar.Reduce_tree -> emit_reduce_tree ctx
  | Grammar.Wcr_accumulate -> emit_wcr_accumulate ctx
  | Grammar.Copy_chain -> emit_copy_chain ctx
  | Grammar.Device_roundtrip -> emit_device_roundtrip ctx
  | Grammar.Parallel_kernel -> emit_parallel_kernel ctx
  | Grammar.For_loop -> emit_for_loop ctx
  | Grammar.Symbol_loop -> emit_symbol_loop ctx
  | Grammar.State_split -> emit_state_split ctx
  | Grammar.Risky_read -> emit_risky_read ctx
  | Grammar.Risky_race -> emit_risky_race ctx
  | Grammar.Risky_rank -> emit_risky_rank ctx

(* ---- candidate assembly ----------------------------------------------- *)

let base name =
  let g = Graph.create name in
  Graph.add_symbol g "N";
  Graph.add_scalar g "c0" Dtype.F64;
  Graph.add_array g "x0" Dtype.F64 [ sym "N" ];
  Graph.add_array g "x1" Dtype.F64 [ sym "N" ];
  Graph.add_array g "M0" Dtype.F64 [ sym "N"; sym "N" ];
  let s0 = Graph.add_state g "s0" in
  (g, s0)

let candidate ?(budget = Grammar.default_budget) ~(style : Styles.t) ~seed index =
  let name = candidate_name ~style:style.Styles.name ~seed ~index in
  let g, s0 = base name in
  let ctx =
    {
      g;
      ns = Ns.of_graph g;
      rng = Rng.split (Rng.create seed) (fnv1a (Printf.sprintf "%s/%d" style.Styles.name index));
      cur = s0;
      vec1 = [ { data = "x0"; written = None }; { data = "x1"; written = None } ];
      mat2 = [ { data = "M0"; written = None } ];
      scalars = [ { data = "c0"; written = None } ];
      last_out = None;
      rules = [];
    }
  in
  let span = budget.Grammar.max_fragments - budget.Grammar.min_fragments in
  let fragments = budget.Grammar.min_fragments + if span > 0 then Rng.int ctx.rng (span + 1) else 0 in
  for _ = 1 to fragments do
    emit ctx (Rng.weighted ctx.rng style.Styles.weights)
  done;
  (* the program must have an externally visible output so differential
     testing compares non-trivial system state *)
  (match ctx.last_out with
  | Some c when (Graph.container g c).Graph.transient -> Graph.set_transient g c false
  | _ -> ());
  { name; graph = g; style = style.Styles.name; seed; index; rules = List.rev ctx.rules }

let by_name ?budget n =
  match parse_name n with
  | None -> None
  | Some (style, seed, index) -> (
      match Styles.by_name style with
      | None -> None
      | Some s -> Some (candidate ?budget ~style:s ~seed index))
