(** Seeded SDFG candidate generation.

    A candidate is fully determined by [(style, seed, index)] — its own name
    encodes that triple, so any component (campaign registration, faultlab
    plans, corpus entries) can regenerate the exact graph from the name
    alone. Determinism is end-to-end: the PRNG is the self-contained
    {!Rng} splitmix64, fresh names come from {!Builder.Build.Namespace}
    (counter-based, no global state), and all container/rule pools are
    ordered lists — the same triple yields a byte-identical
    {!Sdfg.Serialize.to_string} image on every run and machine. *)

type t = {
  name : string;  (** [gen_<style>_s<seed>_c<index>] *)
  graph : Sdfg.Graph.t;
  style : string;
  seed : int;
  index : int;
  rules : Grammar.rule list;  (** production rules applied, in emission order *)
}

(** Name of the candidate at [(style, seed, index)]. *)
val candidate_name : style:string -> seed:int -> index:int -> string

(** [parse_name n] recovers [(style, seed, index)] from a candidate name;
    [None] if [n] is not a generated-program name. *)
val parse_name : string -> (string * int * int) option

(** Generate candidate [index] of the [(style, seed)] stream. Candidates are
    independent: generating index 7 does not require generating 0–6. *)
val candidate : ?budget:Grammar.budget -> style:Styles.t -> seed:int -> int -> t

(** Regenerate a candidate graph from its name (default budget); [None] if
    the name does not parse or names an unknown style. *)
val by_name : ?budget:Grammar.budget -> string -> t option
