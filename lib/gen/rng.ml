(* splitmix64 (Steele, Lea & Flood 2014): a tiny, well-distributed generator
   with a trivially portable definition. The state is the seed of the next
   draw; [split] re-mixes the base seed with a salt so derived streams are
   independent of consumption order. *)

type t = { mutable s : int64; base : int64 }

let gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed =
  let base = mix64 (Int64.of_int seed) in
  { s = base; base }

let split t salt =
  let base = mix64 (Int64.add t.base (Int64.mul gamma (Int64.of_int (salt + 1)))) in
  { s = base; base }

let next t =
  t.s <- Int64.add t.s gamma;
  mix64 t.s

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  Int64.to_int (Int64.rem (Int64.logand (next t) Int64.max_int) (Int64.of_int bound))

let bool t = Int64.logand (next t) 1L = 1L

let choice t xs =
  match xs with [] -> invalid_arg "Rng.choice: empty list" | _ -> List.nth xs (int t (List.length xs))

let weighted t entries =
  let total = List.fold_left (fun acc (w, _) -> acc + max 0 w) 0 entries in
  if total <= 0 then invalid_arg "Rng.weighted: total weight must be positive";
  let k = int t total in
  let rec pick k = function
    | [] -> invalid_arg "Rng.weighted: internal"
    | (w, x) :: rest -> if k < max 0 w then x else pick (k - max 0 w) rest
  in
  pick k entries
