open Sdfg

type hint = Drop_state of int | Drop_component of { state : int; nodes : int list }

let pp_hint fmt = function
  | Drop_state s -> Format.fprintf fmt "drop state %d" s
  | Drop_component { state; nodes } ->
      Format.fprintf fmt "drop component {%s} of state %d"
        (String.concat "," (List.map string_of_int nodes))
        state

let plain (e : Graph.istate_edge) = e.cond = Symbolic.Cond.True && e.assigns = []

let droppable_state g sid =
  sid <> Graph.start_state g
  && List.for_all plain (Graph.in_istate_edges g sid)
  && List.for_all plain (Graph.out_istate_edges g sid)

(* Weakly-connected components of a state's dataflow graph, each sorted,
   listed by smallest member. *)
let components st =
  let ids = State.node_ids st in
  let adj = Hashtbl.create 32 in
  let link a b =
    Hashtbl.replace adj a (b :: Option.value ~default:[] (Hashtbl.find_opt adj a))
  in
  List.iter
    (fun (e : State.edge) ->
      link e.src e.dst;
      link e.dst e.src)
    (State.edges st);
  let seen = Hashtbl.create 32 in
  let component root =
    let acc = ref [] in
    let rec visit n =
      if not (Hashtbl.mem seen n) then begin
        Hashtbl.replace seen n ();
        acc := n :: !acc;
        List.iter visit (Option.value ~default:[] (Hashtbl.find_opt adj n))
      end
    in
    visit root;
    List.sort compare !acc
  in
  List.filter_map (fun n -> if Hashtbl.mem seen n then None else Some (component n)) ids

let hints g =
  let state_hints =
    List.filter_map
      (fun (sid, _) -> if droppable_state g sid then Some (Drop_state sid) else None)
      (Graph.states g)
  in
  let component_hints =
    List.concat_map
      (fun (sid, st) ->
        match components st with
        | [] | [ _ ] -> []
        | comps -> List.map (fun nodes -> Drop_component { state = sid; nodes }) comps)
      (Graph.states g)
  in
  state_hints @ component_hints

let apply g hint =
  match hint with
  | Drop_state sid ->
      if Graph.state_opt g sid = None || not (droppable_state g sid) then None
      else begin
        let g' = Graph.copy g in
        let preds = List.map (fun (e : Graph.istate_edge) -> e.src) (Graph.in_istate_edges g' sid) in
        let succs = List.map (fun (e : Graph.istate_edge) -> e.dst) (Graph.out_istate_edges g' sid) in
        Graph.remove_state g' sid;
        List.iter
          (fun p -> List.iter (fun s -> ignore (Graph.add_istate_edge g' p s)) succs)
          (List.sort_uniq compare preds);
        Some g'
      end
  | Drop_component { state = sid; nodes } -> (
      match Graph.state_opt g sid with
      | None -> None
      | Some st ->
          if nodes = [] || not (List.for_all (State.has_node st) nodes) then None
          else begin
            let g' = Graph.copy g in
            let st' = Graph.state g' sid in
            List.iter
              (fun (e : State.edge) ->
                if List.mem e.src nodes || List.mem e.dst nodes then State.remove_edge st' e.e_id)
              (State.edges st');
            List.iter (State.remove_node st') nodes;
            Some g'
          end)

let shrink ~keep g =
  let rec go g =
    let rec try_hints = function
      | [] -> g
      | h :: rest -> (
          match apply g h with
          | Some g' when keep g' -> go g'
          | _ -> try_hints rest)
    in
    try_hints (hints g)
  in
  go g
