(** Structural shrink hints for generated programs.

    Generated candidates are built fragment-by-fragment, so their natural
    reduction steps are structural: drop a whole control-flow state whose
    edges carry no conditions or assignments, or drop one weakly-connected
    dataflow component of a state that holds several. {!shrink} applies
    hints greedily under a caller-supplied invariant ([keep] — typically
    "the verdict class still reproduces"), the same contract the corpus
    minimization roadmap item needs. All operations are copy-based; the
    input graph is never mutated. *)

type hint =
  | Drop_state of int  (** remove a state whose in/out edges are all plain *)
  | Drop_component of { state : int; nodes : int list }
      (** remove one weakly-connected dataflow component (node ids) *)

val pp_hint : Format.formatter -> hint -> unit

(** Applicable hints for a graph, deterministic order: states ascending,
    then components by smallest member node id. Components are only hinted
    when their state has more than one, and the start state is never a
    [Drop_state] candidate. *)
val hints : Sdfg.Graph.t -> hint list

(** Apply one hint to a copy; [None] when the hint no longer applies (stale
    ids after earlier shrinks). Dropping a state splices its predecessors to
    its successors with plain edges. *)
val apply : Sdfg.Graph.t -> hint -> Sdfg.Graph.t option

(** Greedy fixpoint: repeatedly apply the first hint whose result satisfies
    [keep]; returns the smallest graph reached. [keep] is never called on
    the input graph itself. *)
val shrink : keep:(Sdfg.Graph.t -> bool) -> Sdfg.Graph.t -> Sdfg.Graph.t
