(** Convenience constructors for hand-written SDFGs.

    Workloads, tests and examples assemble graphs from a small set of
    patterns: a (possibly mapped) tasklet with its access nodes and
    connector wiring, a library node, an access-to-access copy, and the
    canonical for-loop state pattern recognized by
    {!Transforms.Xform.find_loops}. This module builds those patterns with
    the exact wiring conventions the validator and interpreter expect. *)

open Sdfg

(** Handles to the nodes created for one (mapped) tasklet. For a plain
    tasklet (no [map]), [entry] and [exit] both alias [tasklet]. *)
type mapped = {
  entry : int;
  exit : int;
  tasklet : int;
  in_access : (string * int) list;  (** one access node per distinct input *)
  out_access : (string * int) list;  (** one access node per distinct output *)
}

(** [mem data subset] is a memlet over [data] with [subset] parsed by
    {!Symbolic.Subset.of_string}; [""] denotes a scalar access. *)
val mem : ?wcr:Memlet.wcr -> string -> string -> Memlet.t

(** Memlet covering the whole declared shape of a container. *)
val full : Graph.t -> string -> Memlet.t

(** Build a tasklet, optionally inside a fresh map scope.

    [inputs]/[outputs] associate tasklet connector names with the memlets
    they access. With [map], a [Map_entry]/[Map_exit] pair is created; edges
    into the entry and out of the exit carry the memlets widened over the
    map parameters ({!Propagate.memlet_through_map}), routed through
    ["IN_<data>"]/["OUT_<data>"] connectors. [input_nodes] reuses existing
    access nodes for the given containers (read-after-write chaining). *)
val mapped_tasklet :
  Graph.t ->
  State.t ->
  label:string ->
  ?schedule:Node.schedule ->
  ?map:(string * string) list ->
  ?input_nodes:(string * int) list ->
  inputs:(string * Memlet.t) list ->
  code:string ->
  outputs:(string * Memlet.t) list ->
  unit ->
  mapped

(** Build a library node with its access nodes; connector names are the
    association keys of [inputs]/[outputs]. Returns the library node id and
    the input/output access-node tables. *)
val library :
  Graph.t ->
  State.t ->
  label:string ->
  kind:Node.lib_kind ->
  ?input_nodes:(string * int) list ->
  inputs:(string * Memlet.t) list ->
  outputs:(string * Memlet.t) list ->
  unit ->
  int * (string * int) list * (string * int) list

(** Access-to-access copy edge; defaults to the full source subset. Returns
    the (src, dst) access-node ids. *)
val copy :
  Graph.t ->
  State.t ->
  src:string ->
  dst:string ->
  ?src_node:int ->
  ?src_subset:Symbolic.Subset.t ->
  ?dst_subset:Symbolic.Subset.t ->
  unit ->
  int * int

(** Fresh-name namespace for collision-free composition.

    A namespace tracks every identifier already claimed by a graph —
    container names, declared and free symbols, state labels, map
    parameters, tasklet/library labels — so generated fragments
    ({!Gen.Generate}) and hand-built fragments can be composed into one
    graph without name collisions. [fresh] is deterministic: the same
    sequence of calls on the same graph yields the same names. *)
module Namespace : sig
  type t

  (** Empty namespace. *)
  val create : unit -> t

  (** Namespace pre-seeded with every identifier the graph already uses. *)
  val of_graph : Graph.t -> t

  (** Has this exact name been claimed? *)
  val mem : t -> string -> bool

  (** Claim a name as used without generating anything. *)
  val reserve : t -> string -> unit

  (** [fresh t base] returns [base] if unclaimed, else the first unclaimed
      [base_<n>] (per-base counters, monotone across calls), and claims it. *)
  val fresh : t -> string -> string
end

(** Append the canonical for-loop state pattern:
    [entry_from --(var:=init)--> guard], [guard --(cond)--> body],
    [guard --(not cond)--> after], [body --(var:=update)--> guard].
    Returns [(guard, body, after)] state ids. The enter edge is added before
    the exit edge so the interpreter prefers the body while [cond] holds. *)
val for_loop :
  Graph.t ->
  entry_from:int ->
  var:string ->
  init:Symbolic.Expr.t ->
  cond:Symbolic.Cond.t ->
  update:Symbolic.Expr.t ->
  body_label:string ->
  after_label:string ->
  int * int * int
