open Sdfg

type mapped = {
  entry : int;
  exit : int;
  tasklet : int;
  in_access : (string * int) list;
  out_access : (string * int) list;
}

let mem ?wcr data subset = Memlet.simple ?wcr data subset

let full g data =
  let desc = Graph.container g data in
  Memlet.make data (Symbolic.Subset.full desc.Graph.shape)

(* Access-node lookup table: reuse a node already created for this tasklet's
   wiring, else one supplied by the caller, else a fresh one. Inputs and
   outputs use separate tables so a container read and written by the same
   tasklet gets two access nodes (keeping the dataflow graph acyclic). *)
let find_or_create st tbl provided c =
  match List.assoc_opt c !tbl with
  | Some id -> id
  | None ->
      let id =
        match List.assoc_opt c provided with
        | Some id -> id
        | None -> State.add_node st (Node.Access c)
      in
      tbl := (c, id) :: !tbl;
      id

let mapped_tasklet _g st ~label ?(schedule = Node.Sequential) ?(map = []) ?(input_nodes = [])
    ~inputs ~code ~outputs () =
  let tasklet = State.add_node st (Node.tasklet label code) in
  let in_tbl = ref [] and out_tbl = ref [] in
  let entry, exit =
    if map = [] then begin
      List.iter
        (fun (conn, (m : Memlet.t)) ->
          ignore
            (State.add_edge st ~dst_conn:conn ~memlet:m
               (find_or_create st in_tbl input_nodes m.data)
               tasklet))
        inputs;
      List.iter
        (fun (conn, (m : Memlet.t)) ->
          ignore
            (State.add_edge st ~src_conn:conn ~memlet:m tasklet
               (find_or_create st out_tbl [] m.data)))
        outputs;
      (tasklet, tasklet)
    end
    else begin
      let params = List.map fst map in
      let ranges =
        List.map
          (fun (_, r) ->
            match Symbolic.Subset.of_string r with
            | [ range ] -> range
            | _ -> invalid_arg ("Build.mapped_tasklet: bad range " ^ r))
          map
      in
      let entry =
        State.add_node st (Node.Map_entry { label; params; ranges; schedule })
      in
      let exit = State.add_node st (Node.Map_exit { entry }) in
      let widen m = Propagate.memlet_through_map ~params ~ranges m in
      List.iter
        (fun (conn, (m : Memlet.t)) ->
          let acc = find_or_create st in_tbl input_nodes m.data in
          ignore (State.add_edge st ~dst_conn:("IN_" ^ m.data) ~memlet:(widen m) acc entry);
          ignore (State.add_edge st ~src_conn:("OUT_" ^ m.data) ~dst_conn:conn ~memlet:m entry tasklet))
        inputs;
      if inputs = [] then ignore (State.add_edge st entry tasklet);
      List.iter
        (fun (conn, (m : Memlet.t)) ->
          let acc = find_or_create st out_tbl [] m.data in
          ignore (State.add_edge st ~src_conn:conn ~dst_conn:("IN_" ^ m.data) ~memlet:m tasklet exit);
          ignore (State.add_edge st ~src_conn:("OUT_" ^ m.data) ~memlet:(widen m) exit acc))
        outputs;
      (entry, exit)
    end
  in
  { entry; exit; tasklet; in_access = !in_tbl; out_access = !out_tbl }

let library _g st ~label ~kind ?(input_nodes = []) ~inputs ~outputs () =
  let lib = State.add_node st (Node.Library { label; kind }) in
  let in_tbl = ref [] and out_tbl = ref [] in
  List.iter
    (fun (conn, (m : Memlet.t)) ->
      ignore
        (State.add_edge st ~dst_conn:conn ~memlet:m
           (find_or_create st in_tbl input_nodes m.data)
           lib))
    inputs;
  List.iter
    (fun (conn, (m : Memlet.t)) ->
      ignore (State.add_edge st ~src_conn:conn ~memlet:m lib (find_or_create st out_tbl [] m.data)))
    outputs;
  (lib, !in_tbl, !out_tbl)

let copy g st ~src ~dst ?src_node ?src_subset ?dst_subset () =
  let src_id = match src_node with Some id -> id | None -> State.add_node st (Node.Access src) in
  let dst_id = State.add_node st (Node.Access dst) in
  let subset =
    match src_subset with
    | Some s -> s
    | None -> Symbolic.Subset.full (Graph.container g src).Graph.shape
  in
  let memlet = Memlet.make src subset in
  let dst_memlet =
    match dst_subset with
    | Some s -> Memlet.make dst s
    | None -> Memlet.make dst (Symbolic.Subset.full (Graph.container g dst).Graph.shape)
  in
  ignore (State.add_edge st ~memlet ~dst_memlet src_id dst_id);
  (src_id, dst_id)

module Namespace = struct
  type t = { used : (string, unit) Hashtbl.t; counters : (string, int) Hashtbl.t }

  let create () = { used = Hashtbl.create 64; counters = Hashtbl.create 16 }
  let mem t name = Hashtbl.mem t.used name
  let reserve t name = if not (mem t name) then Hashtbl.replace t.used name ()

  let of_graph g =
    let t = create () in
    List.iter (fun (name, _) -> reserve t name) (Graph.containers g);
    List.iter (reserve t) (Graph.symbols g);
    List.iter (reserve t) (Graph.all_free_syms g);
    List.iter
      (fun (_, st) ->
        reserve t (State.label st);
        List.iter
          (fun (_, n) ->
            match n with
            | Node.Map_entry { params; _ } -> List.iter (reserve t) params
            | Node.Tasklet { label; _ } | Node.Library { label; _ } -> reserve t label
            | Node.Access _ | Node.Map_exit _ -> ())
          (State.nodes st))
      (Graph.states g);
    t

  let fresh t base =
    if not (mem t base) then begin
      reserve t base;
      base
    end
    else begin
      let n = ref (match Hashtbl.find_opt t.counters base with Some n -> n | None -> 0) in
      let candidate () = Printf.sprintf "%s_%d" base !n in
      while mem t (candidate ()) do
        incr n
      done;
      let name = candidate () in
      Hashtbl.replace t.counters base (!n + 1);
      reserve t name;
      name
    end
end

let for_loop g ~entry_from ~var ~init ~cond ~update ~body_label ~after_label =
  let guard = Graph.add_state g (body_label ^ "_guard") in
  let body = Graph.add_state g body_label in
  let after = Graph.add_state g after_label in
  ignore (Graph.add_istate_edge g ~assigns:[ (var, init) ] entry_from guard);
  ignore (Graph.add_istate_edge g ~cond guard body);
  ignore (Graph.add_istate_edge g ~cond:(Symbolic.Cond.negate cond) guard after);
  ignore (Graph.add_istate_edge g ~assigns:[ (var, update) ] body guard);
  (guard, body, after)
