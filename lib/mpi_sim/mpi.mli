(** Simulated message passing for the multi-node experiments (Sec. 6.2).

    Ranks run sequentially in one process; each rank owns a buffer table.
    Collectives operate across the per-rank buffers exactly like their MPI
    counterparts operate across nodes, decomposed into point-to-point
    transmissions carrying sequence numbers and payload checksums. The point
    of Sec. 6.2 — that a cutout of a compute kernel excludes communication
    and can be tested on a single rank — is exercised by comparing a full
    simulated-distributed run against single-cutout trials.

    The faultlab (level 2) attacks the transmission layer through an
    injectable {!policy}: a chosen message is dropped, duplicated, reordered
    or corrupted. Recovery is built in — duplicates are deduplicated by
    sequence number, reordered packets are buffered and applied in sequence
    order, and dropped / corrupted packets (detected by ack timeout /
    checksum mismatch) are retransmitted with exponential bounded backoff.
    Transient faults heal to a bit-identical result; persistent ones exhaust
    {!max_retries} and raise {!Mpi_fault}. *)

type fault_kind = Drop | Duplicate | Reorder | Corrupt

val fault_kind_to_string : fault_kind -> string

type policy = {
  kind : fault_kind;
  victim : int;  (** sequence number of the message to attack (0-based) *)
  persistent : bool;
      (** re-apply the fault to every retransmission; [Drop] and [Corrupt]
          then exhaust the retry budget and raise {!Mpi_fault}, while
          [Duplicate] and [Reorder] still heal *)
  seed : int;  (** selects the damaged element and bit for [Corrupt] *)
}

exception Mpi_fault of { kind : fault_kind; message : int; retries : int }
(** A persistent fault survived [retries] retransmissions of [message]. *)

val max_retries : int
(** Retransmission budget per message before {!Mpi_fault}. *)

(** Delivery-layer counters, for the faultlab report and benches. *)
type stats = {
  messages : int;  (** logical point-to-point transmissions *)
  retransmits : int;  (** extra sends forced by drop / corrupt *)
  healed : int;  (** faults fully recovered from *)
  backoff : int;  (** total backoff units spent (1 << attempt per retry) *)
}

type comm

val create : ?policy:policy -> int -> comm
(** [create n] makes a communicator of [n] ranks; [?policy] arms a fault.
    @raise Invalid_argument when [n <= 0]. *)

val size : comm -> int
val stats : comm -> stats

(** Per-rank buffers: [buffers.(rank)] is that rank's local array. All
    collectives require one buffer per rank, equally sized where relevant. *)

val bcast : comm -> root:int -> float array array -> unit
(** Copy the root's buffer into every rank's buffer. *)

val allreduce_sum : comm -> float array array -> unit
(** Element-wise sum across ranks; every rank ends with the total. *)

val scatter : comm -> root:int -> src:float array -> float array array -> unit
(** Split [src] into [size] contiguous chunks; chunk i lands in rank i's
    buffer. [src] length must equal the sum of buffer lengths. *)

val gather : comm -> root:int -> float array array -> dst:float array -> unit
(** Concatenate rank buffers into [dst] (available at every rank here, since
    ranks share the process). *)

(** Number of simulated point-to-point messages a collective costs, used for
    the cost accounting in benches. *)
val bcast_messages : comm -> int

val allreduce_messages : comm -> int
