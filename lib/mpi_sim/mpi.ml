(* Simulated MPI with a message-level delivery layer.

   Collectives are decomposed into point-to-point transmissions. Each
   transmission carries a sequence number and an FNV-1a checksum of its
   payload, which gives the faultlab policy well-defined places to attack
   (drop / duplicate / reorder / corrupt message #k) and the receiver the
   machinery to recover: duplicates are deduplicated by sequence number,
   out-of-order packets are buffered and applied in sequence order
   (reassembly), and dropped or corrupted packets are detected (timeout /
   checksum mismatch) and retransmitted with exponential bounded backoff.
   Transient faults therefore heal to a bit-identical result; persistent
   faults exhaust the retry budget and surface as a typed [Mpi_fault]. *)

type fault_kind = Drop | Duplicate | Reorder | Corrupt

let fault_kind_to_string = function
  | Drop -> "drop"
  | Duplicate -> "duplicate"
  | Reorder -> "reorder"
  | Corrupt -> "corrupt"

type policy = { kind : fault_kind; victim : int; persistent : bool; seed : int }

exception Mpi_fault of { kind : fault_kind; message : int; retries : int }

let () =
  Printexc.register_printer (function
    | Mpi_fault { kind; message; retries } ->
        Some
          (Printf.sprintf "Mpi_fault(%s on message %d after %d retries)"
             (fault_kind_to_string kind) message retries)
    | _ -> None)

type stats = { messages : int; retransmits : int; healed : int; backoff : int }

type comm = {
  n : int;
  policy : policy option;
  mutable seq : int;  (** next logical message sequence number *)
  mutable pending : (unit -> unit) option;
      (** a reordered packet awaiting reassembly; applied before any newer
          packet so receiver state evolves in sequence order *)
  mutable st_messages : int;
  mutable st_retransmits : int;
  mutable st_healed : int;
  mutable st_backoff : int;
}

let create ?policy n =
  if n <= 0 then invalid_arg "Mpi.create: need at least one rank";
  {
    n;
    policy;
    seq = 0;
    pending = None;
    st_messages = 0;
    st_retransmits = 0;
    st_healed = 0;
    st_backoff = 0;
  }

let size c = c.n
let stats c =
  {
    messages = c.st_messages;
    retransmits = c.st_retransmits;
    healed = c.st_healed;
    backoff = c.st_backoff;
  }

let max_retries = 4

let fnv_prime = 0x100000001b3L

let checksum payload =
  Array.fold_left
    (fun acc v ->
      let bits = Int64.bits_of_float v in
      let acc = ref acc in
      for shift = 0 to 7 do
        let byte = Int64.logand (Int64.shift_right_logical bits (8 * shift)) 0xFFL in
        acc := Int64.mul (Int64.logxor !acc byte) fnv_prime
      done;
      !acc)
    0xcbf29ce484222325L payload

(* Deterministic single-bit corruption: the policy seed picks the element
   and the bit so the same campaign seed always damages the same datum. *)
let corrupted p payload =
  let len = Array.length payload in
  if len = 0 then payload
  else begin
    let bad = Array.copy payload in
    let i = (p.seed lsr 6) mod len in
    let bit = p.seed land 63 in
    bad.(i) <- Int64.float_of_bits (Int64.logxor (Int64.bits_of_float bad.(i)) (Int64.shift_left 1L bit));
    bad
  end

(* Apply any buffered out-of-order packet before newer traffic, so the
   receiver's state always advances in sequence order (reassembly). *)
let flush c =
  match c.pending with
  | None -> ()
  | Some apply ->
      c.pending <- None;
      apply ();
      c.st_healed <- c.st_healed + 1

(* One faulted transmission: retry with exponential bounded backoff until
   delivery verifies, or the budget is exhausted. *)
let rec attempt c p ~seq ~payload ~deliver ~try_no =
  if try_no > max_retries then
    raise (Mpi_fault { kind = p.kind; message = seq; retries = max_retries });
  if try_no > 0 then begin
    c.st_retransmits <- c.st_retransmits + 1;
    c.st_backoff <- c.st_backoff + (1 lsl (try_no - 1))
  end;
  let faulty = try_no = 0 || p.persistent in
  match p.kind with
  | Drop ->
      if faulty then
        (* packet lost; the receiver's ack timeout triggers a retransmit *)
        attempt c p ~seq ~payload ~deliver ~try_no:(try_no + 1)
      else begin
        deliver payload;
        c.st_healed <- c.st_healed + 1
      end
  | Corrupt ->
      if faulty then begin
        let wire = corrupted p payload in
        if checksum wire <> checksum payload then
          (* checksum mismatch at the receiver: NACK and retransmit *)
          attempt c p ~seq ~payload ~deliver ~try_no:(try_no + 1)
        else
          (* zero-length payload: nothing to damage *)
          deliver wire
      end
      else begin
        deliver payload;
        c.st_healed <- c.st_healed + 1
      end
  | Duplicate ->
      (* both copies arrive; the second shares the sequence number and is
         deduplicated, so exactly one application happens *)
      deliver payload;
      c.st_healed <- c.st_healed + 1
  | Reorder ->
      (* delayed in flight: buffered and applied before the next packet *)
      c.pending <- Some (fun () -> deliver payload)

let transmit c ~payload ~deliver =
  let seq = c.seq in
  c.seq <- seq + 1;
  c.st_messages <- c.st_messages + 1;
  flush c;
  match c.policy with
  | Some p when p.victim = seq -> attempt c p ~seq ~payload ~deliver ~try_no:0
  | _ -> deliver payload

(* Collective completion implies delivery: drain any packet still buffered
   for reassembly. *)
let barrier c = flush c

let check_ranks c bufs name =
  if Array.length bufs <> c.n then
    invalid_arg (Printf.sprintf "Mpi.%s: %d buffers for %d ranks" name (Array.length bufs) c.n)

let bcast c ~root bufs =
  check_ranks c bufs "bcast";
  let src = bufs.(root) in
  Array.iteri
    (fun r b ->
      if r <> root then begin
        if Array.length b <> Array.length src then invalid_arg "Mpi.bcast: size mismatch";
        transmit c ~payload:(Array.copy src)
          ~deliver:(fun p -> Array.blit p 0 b 0 (Array.length p))
      end)
    bufs;
  barrier c

(* Reduce-to-root then broadcast: 2(n-1) messages, matching
   [allreduce_messages]. Partial sums accumulate in rank order, preserving
   the exact floating-point result of the direct fold. *)
let allreduce_sum c bufs =
  check_ranks c bufs "allreduce_sum";
  let n = Array.length bufs.(0) in
  Array.iter
    (fun b -> if Array.length b <> n then invalid_arg "Mpi.allreduce_sum: size mismatch")
    bufs;
  let total = Array.make n 0. in
  for i = 0 to n - 1 do
    total.(i) <- 0. +. bufs.(0).(i)
  done;
  for r = 1 to c.n - 1 do
    transmit c ~payload:(Array.copy bufs.(r))
      ~deliver:(fun p ->
        for i = 0 to n - 1 do
          total.(i) <- total.(i) +. p.(i)
        done)
  done;
  barrier c;
  Array.blit total 0 bufs.(0) 0 n;
  for r = 1 to c.n - 1 do
    transmit c ~payload:(Array.copy total) ~deliver:(fun p -> Array.blit p 0 bufs.(r) 0 n)
  done;
  barrier c

let scatter c ~root ~src bufs =
  check_ranks c bufs "scatter";
  let total = Array.fold_left (fun acc b -> acc + Array.length b) 0 bufs in
  if total <> Array.length src then invalid_arg "Mpi.scatter: size mismatch";
  let off = ref 0 in
  Array.iteri
    (fun r b ->
      let len = Array.length b in
      let chunk = Array.sub src !off len in
      off := !off + len;
      if r = root then Array.blit chunk 0 b 0 len
      else transmit c ~payload:chunk ~deliver:(fun p -> Array.blit p 0 b 0 len))
    bufs;
  barrier c

let gather c ~root bufs ~dst =
  check_ranks c bufs "gather";
  let total = Array.fold_left (fun acc b -> acc + Array.length b) 0 bufs in
  if total <> Array.length dst then invalid_arg "Mpi.gather: size mismatch";
  let off = ref 0 in
  Array.iteri
    (fun r b ->
      let len = Array.length b in
      let o = !off in
      off := o + len;
      if r = root then Array.blit b 0 dst o len
      else transmit c ~payload:(Array.copy b) ~deliver:(fun p -> Array.blit p 0 dst o len))
    bufs;
  barrier c

let bcast_messages c = c.n - 1
let allreduce_messages c = 2 * (c.n - 1)
