(** Append-only JSONL campaign journal.

    One line per record: a header describing the campaign configuration,
    one instance record per completed (program, transformation, site)
    instance, and a footer with campaign totals. Instances are flushed in
    queue order, so a journal is a deterministic prefix of the campaign and
    same-seed reruns produce bit-identical files; [--resume] replays the
    journaled outcomes and only executes what is missing. *)

(** Minimal JSON representation — enough for the journal and corpus
    metadata; no external dependency. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  val to_string : t -> string

  (** @raise Failure on malformed input. *)
  val of_string : string -> t

  (** Object field access; @raise Failure when missing or mistyped. *)
  val mem : t -> string -> t option

  val str : t -> string
  val num : t -> float
  val int : t -> int
  val bool : t -> bool
  val arr : t -> t list

  (** [field_str o k], etc.: typed field accessors with defaults. *)
  val field : t -> string -> t
end

(** Site encoding shared with corpus metadata. *)
val json_of_site : Transforms.Xform.site -> Json.t

val site_of_json : Json.t -> Transforms.Xform.site

type header = {
  seed : int;
  trials : int;
  j : int;
  deadline_s : float;
  programs : string list;
  xforms : string list;
}

type footer = {
  total : int;
  failed : int;
  proved : int;
  killed : int;
  trials_spent : int;
  wall_s : float;
  instances_per_s : float;
  retries : int;  (** worker failures that led to a retry/reconnect *)
  quarantined : int;  (** remote workers quarantined after repeated failures *)
  worker_lost : int;  (** mid-instance worker losses (the instance was requeued) *)
  degraded : bool;  (** the campaign fell back to the local fork pool *)
  recovered_records : int;  (** torn tail records truncated during resume *)
}

type record =
  | Header of header
  | Instance of Fuzzyflow.Campaign.outcome
  | Footer of footer

val header_line : header -> string
val instance_line : Fuzzyflow.Campaign.outcome -> string
val footer_line : footer -> string

(** @raise Failure on a malformed line. *)
val parse_line : string -> record

(** Read a journal, dropping a trailing partial line (a campaign killed
    mid-write) and any unparseable lines; each drop is reported through
    [warn] (default: ignore) with file, line number and a preview. Missing
    file yields []. *)
val load : ?warn:(string -> unit) -> string -> record list

(** Mid-file (non-tail) corruption found during {!load_resume}: the journal
    was damaged by something other than a kill mid-write, so resuming from it
    could silently skip or re-run work. *)
exception Corrupt of { path : string; lineno : int; detail : string }

type loaded = { records : record list; recovered_records : int }

(** Resume-grade load with torn-tail recovery. A single unparseable record in
    the file's final line is a torn write from a killed campaign: it is
    reported through [warn], counted in [recovered_records], and — unless
    [repair] is [false] — physically truncated from the file. Any unparseable
    record {e before} the final line raises {!Corrupt}. Missing file yields
    no records. *)
val load_resume : ?warn:(string -> unit) -> ?repair:bool -> string -> loaded

(** The journaled instance outcomes keyed by instance id, in file order. *)
val completed : record list -> (string * Fuzzyflow.Campaign.outcome) list

(** The header of a loaded journal, if present. *)
val header_of : record list -> header option
