(** Persistent test-case corpus (Sec. 6.4: extracted test cases are kept and
    replayed as regression tests).

    Every failing instance's {!Fuzzyflow.Testcase.t} is saved under
    [dir/<prefix>/<signature>/], where [prefix] is the first two hex
    characters of the signature (so no directory's entry count grows with
    the corpus) and the signature hashes (transformation, failure class,
    cutout shape) — structurally identical findings from different
    workloads deduplicate to one entry. Corpora written by earlier versions
    used a flat [dir/<signature>/] layout; {!entries} and {!replay} read
    both, and a flat entry is renamed into its shard the first time it is
    touched. A case is only admitted if it reproduces at save time under
    the same replay procedure [replay] uses, making the corpus a
    self-consistent regression gate. *)

type meta = {
  signature : string;
  name : string;  (** testcase name (base of the saved files) *)
  program : string;
  xform : string;
  klass : string;  (** journal failure-class name *)
  site : Transforms.Xform.site;  (** valid on the saved cutout (ids preserved) *)
}

type save_result =
  | Saved of string  (** entry directory *)
  | Duplicate of string  (** an entry with the same signature exists *)
  | Not_reproducing  (** replay at save time did not reproduce the failure *)

(** Signature of a finding: FNV-1a hex over the transformation name, failure
    class and cutout shape (kind, container declarations, input/system
    interface). *)
val signature :
  xform:string -> klass:Fuzzyflow.Difftest.failure_class -> Fuzzyflow.Cutout.t -> string

val save :
  dir:string ->
  catalog:Transforms.Xform.t list ->
  program:string ->
  xform:string ->
  klass:Fuzzyflow.Difftest.failure_class ->
  site:Transforms.Xform.site ->
  Fuzzyflow.Testcase.t ->
  save_result

(** Corpus entries on disk, sorted by signature. *)
val entries : string -> meta list

type replay_outcome = { meta : meta; reproduced : bool; detail : string }

(** Reload an entry and re-run the differential check: apply the recorded
    transformation to the saved cutout and compare both runs under the stored
    fault-inducing inputs. *)
val replay_entry : catalog:Transforms.Xform.t list -> dir:string -> meta -> replay_outcome

(** Replay the whole corpus. *)
val replay : catalog:Transforms.Xform.t list -> string -> replay_outcome list
