(** Crash-tolerant supervision of remote campaign workers.

    The dispatcher side ({!dispatch} / {!executor}) drives a set of
    socket-connected workers through the {!Wire} protocol: connect +
    version handshake, assignment dispatch, heartbeats on idle connections,
    per-instance deadline overrun detection, and a typed failure taxonomy.
    Failures trigger retry with bounded exponential backoff whose jitter is
    derived deterministically from the per-instance FNV-1a seed; a worker
    that keeps failing is quarantined. Whatever the remote fleet could not
    finish is returned to [Worker.run_campaign] for the local fork-pool
    fallback, so a campaign completes with correct verdicts even if every
    remote worker dies.

    Verdict determinism survives all of it: an instance's verdict depends
    only on (instance, seed), worker-side execution compiles through a
    cache keyed by program digest and symbol valuation (cache-oblivious
    verdicts), and a requeued instance re-runs under the same seed — so any
    topology, any failure schedule, yields journals byte-identical to
    [-j 1].

    The worker side ({!serve_worker}) is the matching accept loop. *)

type endpoint = { host : string; port : int }

val endpoint_to_string : endpoint -> string

(** Parse ["host:port"] (empty host means loopback).
    @raise Invalid_argument on a malformed endpoint. *)
val endpoint_of_string : string -> endpoint

(** The typed failure taxonomy. Every worker failure is classified as one of
    these; none of them ever becomes an instance verdict — verdicts only come
    from a live worker's reply (or the local fallback). *)
type failure_class =
  | Connect_refused of { detail : string }
  | Version_mismatch of { ours : int; theirs : int }
  | Disconnected of { during : string }  (** mid-instance, idle, handshake, assign *)
  | Decode_failure of { detail : string }  (** corrupt frame or nonsense reply *)
  | Hang of { waited_s : float }  (** no progress past heartbeat/deadline+grace *)

val failure_class_name : failure_class -> string

val failure_class_detail : failure_class -> string

type policy = {
  connect_timeout_s : float;  (** connect + handshake budget *)
  heartbeat_s : float;  (** idle ping interval, and pong / frame-read budget *)
  hang_grace_s : float;  (** slack past the instance deadline before [Hang] *)
  max_failures : int;  (** consecutive failures before quarantine *)
  backoff_base_s : float;
  backoff_max_s : float;
}

val default_policy : policy

(** Observation hooks for tests and chaos probes. *)
type events = {
  on_failure : endpoint -> failure_class -> unit;
  on_quarantine : endpoint -> unit;
  on_requeue : int -> unit;
}

val null_events : events

(** [backoff_delay ~policy ~ep ~failures ~seed]: bounded exponential backoff
    with deterministic FNV-1a jitter. Exposed for tests. *)
val backoff_delay : policy:policy -> ep:endpoint -> failures:int -> seed:int -> float

(** Build the remote execution strategy for [Worker.run_campaign]'s
    [options.remote]. [tick] is polled on every dispatch iteration (the
    service's HTTP endpoint piggybacks on it). An empty worker list returns
    every item for local fallback. *)
val executor :
  ?policy:policy ->
  ?events:events ->
  ?tick:(unit -> unit) ->
  workers:endpoint list ->
  unit ->
  Worker.remote_executor

(** Bind + listen (see {!Wire.listen_on}); [port = 0] picks an ephemeral
    port, returned alongside the socket. *)
val listen_on : ?host:Unix.inet_addr -> port:int -> unit -> Unix.file_descr * int

(** Worker-side plan/kernel compilation cache, persistent across assignments
    (and, in {!serve_worker}, across sessions). Keys are cutout digest plus
    symbol valuation; per-assignment hit/miss deltas ride back in every
    [Result] frame and surface as a hit rate in dispatcher telemetry. *)
type wcache

val wcache_create : unit -> wcache

(** Cumulative [(hits, misses)] over both caches. *)
val wcache_stats : wcache -> int * int

(** Run one assignment in-process under an alarm-based deadline, compiling
    through [caches] (a fresh throwaway cache when omitted), and build the
    reply. Verdicts are cache-oblivious, so a remote verdict is byte-identical
    to a local one. Exposed for tests. *)
val run_assignment :
  ?caches:wcache -> catalog:Transforms.Xform.t list -> Wire.assignment -> Wire.message

(** The worker accept loop: handshake, then serve assignments until the peer
    disconnects; transformations are resolved by registry name in [catalog].
    [once] exits after the first connection closes (tests). Runs forever
    otherwise — fork it, or dedicate the process to it. *)
val serve_worker : ?once:bool -> catalog:Transforms.Xform.t list -> Unix.file_descr -> unit
