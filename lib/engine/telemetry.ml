open Fuzzyflow

type t = {
  total : int;
  j : int;
  progress : bool;
  started : float;
  mutable completed : int;
  mutable failed : int;
  mutable proved : int;
  mutable killed : int;
  mutable trials : int;
  mutable dep_pairs : int;
  mutable dep_decided : int;
  mutable cases_saved : int;
  mutable resumed_n : int;
  mutable last_render : float;
  workers : string option array;  (** instance id currently on each slot *)
}

let create ?(progress = true) ~total ~j () =
  {
    total;
    j = max 1 j;
    progress;
    started = Unix.gettimeofday ();
    completed = 0;
    failed = 0;
    proved = 0;
    killed = 0;
    trials = 0;
    dep_pairs = 0;
    dep_decided = 0;
    cases_saved = 0;
    resumed_n = 0;
    last_render = 0.;
    workers = Array.make (max 1 j) None;
  }

let wall_s t = Unix.gettimeofday () -. t.started

let render t =
  let wall = wall_s t in
  let rate = if wall > 0. then float_of_int t.completed /. wall else 0. in
  let busy = Array.to_list t.workers |> List.filter_map (fun w -> w) in
  let worker_note =
    match busy with
    | [] -> ""
    | w :: _ ->
        let extra = List.length busy - 1 in
        if extra > 0 then Printf.sprintf "  [%s +%d]" w extra else Printf.sprintf "  [%s]" w
  in
  let dep_note =
    if t.dep_pairs = 0 then ""
    else Printf.sprintf "  deps %d/%d" t.dep_decided t.dep_pairs
  in
  Printf.sprintf
    "[%d/%d] %.1f inst/s  failed %d  proved %d  killed %d  trials %d  cases %d  resumed %d%s%s"
    t.completed t.total rate t.failed t.proved t.killed t.trials t.cases_saved t.resumed_n
    dep_note worker_note

let emit ?(force = false) t =
  if t.progress then begin
    let now = Unix.gettimeofday () in
    if force || now -. t.last_render > 0.1 then begin
      t.last_render <- now;
      Printf.eprintf "\r\027[K%s%!" (render t)
    end
  end

let running t ~slot id = if slot < Array.length t.workers then t.workers.(slot) <- Some id

let idle t ~slot = if slot < Array.length t.workers then t.workers.(slot) <- None

let record t (o : Campaign.outcome) =
  t.completed <- t.completed + 1;
  t.trials <- t.trials + o.o_trials_run;
  t.dep_pairs <- t.dep_pairs + o.o_dep_pairs;
  t.dep_decided <- t.dep_decided + o.o_dep_decided;
  (match o.o_verdict with
  | Campaign.O_failed _ -> t.failed <- t.failed + 1
  | Campaign.O_proved -> t.proved <- t.proved + 1
  | _ -> ());
  (match o.o_status with Campaign.Completed -> () | _ -> t.killed <- t.killed + 1);
  emit ~force:(t.completed = t.total) t

let case_saved t = t.cases_saved <- t.cases_saved + 1

let resumed t =
  t.resumed_n <- t.resumed_n + 1;
  t.completed <- t.completed + 1;
  emit t

let summary t : Journal.footer =
  let wall = wall_s t in
  {
    Journal.total = t.completed;
    failed = t.failed + t.killed;
    proved = t.proved;
    killed = t.killed;
    trials_spent = t.trials;
    wall_s = wall;
    instances_per_s = (if wall > 0. then float_of_int t.completed /. wall else 0.);
  }

let finish t = if t.progress then Printf.eprintf "\r\027[K%s\n%!" (render t)
