open Fuzzyflow

type t = {
  total : int;
  j : int;
  progress : bool;
  started : float;
  mutable completed : int;
  mutable failed : int;
  mutable proved : int;
  mutable killed : int;
  mutable trials : int;
  mutable dep_pairs : int;
  mutable dep_decided : int;
  mutable cases_saved : int;
  mutable resumed_n : int;
  mutable retries : int;
  mutable quarantined_n : int;
  mutable worker_lost : int;
  mutable wcache_hits : int;
  mutable wcache_misses : int;
  mutable degraded_f : bool;
  mutable recovered : int;
  mutable last_render : float;
  workers : string option array;  (** instance id currently on each slot *)
}

let create ?(progress = true) ~total ~j () =
  {
    total;
    j = max 1 j;
    progress;
    started = Unix.gettimeofday ();
    completed = 0;
    failed = 0;
    proved = 0;
    killed = 0;
    trials = 0;
    dep_pairs = 0;
    dep_decided = 0;
    cases_saved = 0;
    resumed_n = 0;
    retries = 0;
    quarantined_n = 0;
    worker_lost = 0;
    wcache_hits = 0;
    wcache_misses = 0;
    degraded_f = false;
    recovered = 0;
    last_render = 0.;
    workers = Array.make (max 1 j) None;
  }

let wall_s t = Unix.gettimeofday () -. t.started

let render t =
  let wall = wall_s t in
  let rate = if wall > 0. then float_of_int t.completed /. wall else 0. in
  let busy = Array.to_list t.workers |> List.filter_map (fun w -> w) in
  let worker_note =
    match busy with
    | [] -> ""
    | w :: _ ->
        let extra = List.length busy - 1 in
        if extra > 0 then Printf.sprintf "  [%s +%d]" w extra else Printf.sprintf "  [%s]" w
  in
  let dep_note =
    if t.dep_pairs = 0 then ""
    else Printf.sprintf "  deps %d/%d" t.dep_decided t.dep_pairs
  in
  let dist_note =
    if t.retries = 0 && t.quarantined_n = 0 && t.worker_lost = 0 && not t.degraded_f then ""
    else
      Printf.sprintf "  retries %d  quarantined %d  lost %d%s" t.retries t.quarantined_n
        t.worker_lost
        (if t.degraded_f then "  DEGRADED" else "")
  in
  let cache_note =
    let total = t.wcache_hits + t.wcache_misses in
    if total = 0 then ""
    else
      Printf.sprintf "  wcache %d/%d (%.0f%%)" t.wcache_hits total
        (100. *. float_of_int t.wcache_hits /. float_of_int total)
  in
  Printf.sprintf
    "[%d/%d] %.1f inst/s  failed %d  proved %d  killed %d  trials %d  cases %d  resumed %d%s%s%s%s"
    t.completed t.total rate t.failed t.proved t.killed t.trials t.cases_saved t.resumed_n
    dep_note dist_note cache_note worker_note

let emit ?(force = false) t =
  if t.progress then begin
    let now = Unix.gettimeofday () in
    if force || now -. t.last_render > 0.1 then begin
      t.last_render <- now;
      Printf.eprintf "\r\027[K%s%!" (render t)
    end
  end

let running t ~slot id = if slot < Array.length t.workers then t.workers.(slot) <- Some id

let idle t ~slot = if slot < Array.length t.workers then t.workers.(slot) <- None

let record t (o : Campaign.outcome) =
  t.completed <- t.completed + 1;
  t.trials <- t.trials + o.o_trials_run;
  t.dep_pairs <- t.dep_pairs + o.o_dep_pairs;
  t.dep_decided <- t.dep_decided + o.o_dep_decided;
  (match o.o_verdict with
  | Campaign.O_failed _ -> t.failed <- t.failed + 1
  | Campaign.O_proved -> t.proved <- t.proved + 1
  | _ -> ());
  (match o.o_status with Campaign.Completed -> () | _ -> t.killed <- t.killed + 1);
  emit ~force:(t.completed = t.total) t

let case_saved t = t.cases_saved <- t.cases_saved + 1

let resumed t =
  t.resumed_n <- t.resumed_n + 1;
  t.completed <- t.completed + 1;
  emit t

let retry t =
  t.retries <- t.retries + 1;
  emit t

let quarantine t =
  t.quarantined_n <- t.quarantined_n + 1;
  emit t

let lost_worker t =
  t.worker_lost <- t.worker_lost + 1;
  emit t

let worker_cache t ~hits ~misses =
  t.wcache_hits <- t.wcache_hits + hits;
  t.wcache_misses <- t.wcache_misses + misses

let set_degraded t =
  t.degraded_f <- true;
  emit t

let degraded t = t.degraded_f

let recovered_records t n = t.recovered <- t.recovered + n

let summary t : Journal.footer =
  let wall = wall_s t in
  {
    Journal.total = t.completed;
    failed = t.failed + t.killed;
    proved = t.proved;
    killed = t.killed;
    trials_spent = t.trials;
    wall_s = wall;
    instances_per_s = (if wall > 0. then float_of_int t.completed /. wall else 0.);
    retries = t.retries;
    quarantined = t.quarantined_n;
    worker_lost = t.worker_lost;
    degraded = t.degraded_f;
    recovered_records = t.recovered;
  }

(* Live JSON snapshot for the service's HTTP telemetry endpoint. *)
let snapshot t =
  let f = summary t in
  Journal.Json.Obj
    [
      ("completed", Journal.Json.Num (float_of_int t.completed));
      ("total", Journal.Json.Num (float_of_int t.total));
      ("failed", Journal.Json.Num (float_of_int t.failed));
      ("proved", Journal.Json.Num (float_of_int t.proved));
      ("killed", Journal.Json.Num (float_of_int t.killed));
      ("trials_spent", Journal.Json.Num (float_of_int t.trials));
      ("cases_saved", Journal.Json.Num (float_of_int t.cases_saved));
      ("resumed", Journal.Json.Num (float_of_int t.resumed_n));
      ("retries", Journal.Json.Num (float_of_int f.Journal.retries));
      ("quarantined", Journal.Json.Num (float_of_int f.Journal.quarantined));
      ("worker_lost", Journal.Json.Num (float_of_int f.Journal.worker_lost));
      ("worker_cache_hits", Journal.Json.Num (float_of_int t.wcache_hits));
      ("worker_cache_misses", Journal.Json.Num (float_of_int t.wcache_misses));
      ( "worker_cache_hit_rate",
        Journal.Json.Num
          (let total = t.wcache_hits + t.wcache_misses in
           if total = 0 then 0. else float_of_int t.wcache_hits /. float_of_int total) );
      ("degraded", Journal.Json.Bool f.Journal.degraded);
      ("recovered_records", Journal.Json.Num (float_of_int f.Journal.recovered_records));
      ("wall_s", Journal.Json.Num f.Journal.wall_s);
      ("instances_per_s", Journal.Json.Num f.Journal.instances_per_s);
    ]

let finish t = if t.progress then Printf.eprintf "\r\027[K%s\n%!" (render t)
