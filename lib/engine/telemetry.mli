(** Live campaign progress: instances/sec, per-worker status, trials spent
    and saved, rendered to stderr while the engine runs and summarized for
    the journal footer. *)

type t

val create : ?progress:bool -> total:int -> j:int -> unit -> t

(** A worker slot picked up an instance. *)
val running : t -> slot:int -> string -> unit

(** A worker slot went idle. *)
val idle : t -> slot:int -> unit

(** An instance completed (any status); updates counters and re-renders. *)
val record : t -> Fuzzyflow.Campaign.outcome -> unit

(** A failing instance's test case was persisted to the corpus. *)
val case_saved : t -> unit

(** An instance was satisfied from the journal instead of being re-fuzzed. *)
val resumed : t -> unit

(** One-line status snapshot (also what [record] prints to stderr). *)
val render : t -> string

(** Totals for the journal footer. *)
val summary : t -> Journal.footer

(** Wall-clock seconds since [create]. *)
val wall_s : t -> float

(** Final newline so the in-place progress line is not overwritten. *)
val finish : t -> unit
