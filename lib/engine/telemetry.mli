(** Live campaign progress: instances/sec, per-worker status, trials spent
    and saved, rendered to stderr while the engine runs and summarized for
    the journal footer. *)

type t

val create : ?progress:bool -> total:int -> j:int -> unit -> t

(** A worker slot picked up an instance. *)
val running : t -> slot:int -> string -> unit

(** A worker slot went idle. *)
val idle : t -> slot:int -> unit

(** An instance completed (any status); updates counters and re-renders. *)
val record : t -> Fuzzyflow.Campaign.outcome -> unit

(** A failing instance's test case was persisted to the corpus. *)
val case_saved : t -> unit

(** An instance was satisfied from the journal instead of being re-fuzzed. *)
val resumed : t -> unit

(** A remote worker failed and will be retried (with backoff). *)
val retry : t -> unit

(** A remote worker was quarantined after repeated failures. *)
val quarantine : t -> unit

(** A worker was lost mid-instance; the instance was requeued. *)
val lost_worker : t -> unit

(** Fold a remote worker's per-assignment plan/kernel cache traffic into the
    campaign totals; the hit rate appears in {!render} and {!snapshot}. *)
val worker_cache : t -> hits:int -> misses:int -> unit

(** The campaign fell back to the local fork pool (degraded mode). *)
val set_degraded : t -> unit

val degraded : t -> bool

(** [recovered_records t n]: [n] torn tail records were truncated on resume. *)
val recovered_records : t -> int -> unit

(** Live counters as JSON — the service's HTTP telemetry payload. *)
val snapshot : t -> Journal.Json.t

(** One-line status snapshot (also what [record] prints to stderr). *)
val render : t -> string

(** Totals for the journal footer. *)
val summary : t -> Journal.footer

(** Wall-clock seconds since [create]. *)
val wall_s : t -> float

(** Final newline so the in-place progress line is not overwritten. *)
val finish : t -> unit
