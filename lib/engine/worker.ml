open Fuzzyflow

type failure = Timed_out of { deadline_s : float } | Crashed of { detail : string }

(* ---------------- fork/reap protocol ---------------- *)

(* Results travel through a per-child temp file rather than a pipe: a
   marshalled cutout can exceed the pipe buffer, and a child blocked on a
   full pipe until its deadline would be misreported as a hang. *)

type child = {
  pid : int;
  tmp : string;
  started : float;
  c_idx : int;
  c_slot : int;
  mutable killed : bool;
}

let spawn f idx slot =
  let tmp = Filename.temp_file "fuzzyflow-worker" ".result" in
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      (* child: compute, persist, _exit — never run the parent's at_exit
         handlers or flush its duplicated channel buffers *)
      let result =
        try Ok (f ()) with e -> Error (Printexc.to_string e)
      in
      (try
         let oc = open_out_bin tmp in
         Marshal.to_channel oc result [];
         close_out oc
       with _ -> ());
      Unix._exit 0
  | pid -> { pid; tmp; started = Unix.gettimeofday (); c_idx = idx; c_slot = slot; killed = false }

(* A child's result file can be absent (the child died before its write, or
   the write itself failed) or corrupt (truncated or garbled by a killed
   write — Marshal raises on a bad header or short payload). Both are
   per-child outcomes, never exceptions: one damaged file must not abort the
   campaign around it. *)
let read_result tmp =
  let v =
    match open_in_bin tmp with
    | ic ->
        let v =
          (* the temp file is pre-created empty at spawn, so a child that died
             before its write leaves zero bytes: that's a missing result, not
             a torn one *)
          if in_channel_length ic = 0 then `Missing
          else
            match Marshal.from_channel ic with
            | v -> `Result v
            | exception _ -> `Corrupt
        in
        close_in_noerr ic;
        v
    | exception _ -> `Missing
  in
  (try Sys.remove tmp with _ -> ());
  v

let settle ~deadline_s child status =
  if child.killed then Error (Timed_out { deadline_s })
  else
    match status with
    | Unix.WEXITED 0 -> (
        match read_result child.tmp with
        | `Result (Ok v) -> Ok v
        | `Result (Error detail) -> Error (Crashed { detail })
        | `Missing -> Error (Crashed { detail = "worker exited without reporting a result" })
        | `Corrupt -> Error (Crashed { detail = "worker result file corrupt (torn write?)" }))
    | Unix.WEXITED n ->
        ignore (read_result child.tmp);
        Error (Crashed { detail = Printf.sprintf "worker exited with code %d" n })
    | Unix.WSIGNALED s | Unix.WSTOPPED s ->
        ignore (read_result child.tmp);
        Error (Crashed { detail = Printf.sprintf "worker killed by signal %d" s })

let map_pool ~j ~deadline_s ?on_start ?on_done thunks =
  let n = Array.length thunks in
  let j = max 1 j in
  let results = Array.make n None in
  let slots = Array.make j false in
  let free_slot () =
    let rec go i = if i >= j then 0 else if not slots.(i) then i else go (i + 1) in
    go 0
  in
  (* Sleep-wait reaping via the self-pipe trick: a SIGCHLD handler writes a
     byte to a non-blocking pipe and the loop selects on it, with the timeout
     bounded by the nearest child deadline. An idle pool sleeps instead of
     burning a core, a child exit wakes the loop immediately (a signal
     between the waitpid sweep and the select leaves its byte in the pipe,
     so the wakeup is never lost), and deadline kills keep their precision
     because the select never outsleeps the next deadline. *)
  let rp, wp = Unix.pipe () in
  Unix.set_nonblock rp;
  Unix.set_nonblock wp;
  let prev_sigchld =
    Sys.signal Sys.sigchld
      (Sys.Signal_handle
         (fun _ -> try ignore (Unix.write wp (Bytes.make 1 '\000') 0 1) with _ -> ()))
  in
  let drain () =
    let buf = Bytes.create 64 in
    try
      while Unix.read rp buf 0 64 > 0 do
        ()
      done
    with Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  in
  Fun.protect ~finally:(fun () ->
      Sys.set_signal Sys.sigchld prev_sigchld;
      (try Unix.close rp with Unix.Unix_error _ -> ());
      try Unix.close wp with Unix.Unix_error _ -> ())
  @@ fun () ->
  let running = ref [] in
  let next = ref 0 in
  while !next < n || !running <> [] do
    while !next < n && List.length !running < j do
      let slot = free_slot () in
      slots.(slot) <- true;
      let c = spawn thunks.(!next) !next slot in
      (match on_start with Some f -> f !next slot | None -> ());
      running := c :: !running;
      incr next
    done;
    let still = ref [] in
    List.iter
      (fun c ->
        match Unix.waitpid [ Unix.WNOHANG ] c.pid with
        | 0, _ ->
            if (not c.killed) && Unix.gettimeofday () -. c.started > deadline_s then begin
              (try Unix.kill c.pid Sys.sigkill with Unix.Unix_error _ -> ());
              c.killed <- true
            end;
            still := c :: !still
        | _, status ->
            let r = settle ~deadline_s c status in
            results.(c.c_idx) <- Some r;
            slots.(c.c_slot) <- false;
            (match on_done with Some f -> f c.c_idx r | None -> ())
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> still := c :: !still)
      !running;
    running := !still;
    if !running <> [] then begin
      let now = Unix.gettimeofday () in
      let next_deadline =
        List.fold_left
          (fun acc c -> if c.killed then acc else Float.min acc (c.started +. deadline_s))
          infinity !running
      in
      (* killed children have no deadline left to honor; cap the sleep as a
         safety net against a lost signal either way *)
      let tmo = Float.max 0. (Float.min (next_deadline -. now) 0.5) in
      match Unix.select [ rp ] [] [] tmo with
      | [ _ ], _, _ -> drain ()
      | _ -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    end
  done;
  Array.map Option.get results

let supervise ~deadline_s f = (map_pool ~j:1 ~deadline_s [| f |]).(0)

(* ---------------- the campaign driver ---------------- *)

(* A remote execution strategy, plugged in by [Supervisor.executor]: run the
   fresh items on remote workers, report through the same on_start/on_done
   callbacks as the local pool, and return the indices it could NOT complete
   (every remote worker dead or quarantined) for the local-pool fallback.
   Defined here as plain data so [Worker] never depends on the supervisor. *)
type remote_executor = {
  dispatch :
    items:Queue.item array ->
    config:Difftest.config ->
    static_gate:bool ->
    certify_gate:bool ->
    deadline_s:float ->
    telemetry:Telemetry.t ->
    on_start:(int -> int -> unit) ->
    on_done:(int -> (Campaign.instance_result, failure) result -> unit) ->
    int list;
}

(* How the trial loop's batch width is chosen. [Auto] derives it from the
   per-instance trial budget: wide enough to amortize instruction dispatch,
   capped so one sweep's buffers stay cache-resident. *)
type batching = Inherit | Fixed of int | Auto

let auto_batch ~trials = min 64 (max 1 trials)

type options = {
  j : int;
  deadline_s : float;
  journal_path : string option;
  resume : bool;
  corpus_dir : string option;
  progress : bool;
  limit_per : int option;
  static_gate : bool;
  certify_gate : bool;
  remote : remote_executor option;
  journal_sink : (string -> unit) option;
  on_telemetry : (Telemetry.t -> unit) option;
  batching : batching;
}

let default_options =
  {
    j = 1;
    deadline_s = 60.;
    journal_path = None;
    resume = false;
    corpus_dir = None;
    progress = false;
    limit_per = None;
    static_gate = false;
    certify_gate = false;
    remote = None;
    journal_sink = None;
    on_telemetry = None;
    batching = Inherit;
  }

let rec mkdir_p dir =
  if dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
  end

let killed_outcome ~(item : Queue.item) ~status ~elapsed_s =
  {
    Campaign.o_program = item.program_name;
    o_xform = item.xform.Transforms.Xform.name;
    o_site = item.site;
    o_status = status;
    o_verdict = Campaign.O_killed;
    o_trials_run = 0;
    o_static_flagged = false;
    o_dep_pairs = 0;
    o_dep_decided = 0;
    o_dep_sampled = 0;
    o_elapsed_s = elapsed_s;
    o_seed = item.seed;
  }

let run_campaign ?(options = default_options) ?(config = Difftest.default_config) ?catalog
    programs xforms =
  let catalog = match catalog with Some c -> c | None -> xforms in
  (* resolve the batch width once: it flows into local children and remote
     assignments alike through the one config value, and verdicts are
     width-oblivious, so this cannot perturb journals *)
  let config =
    match options.batching with
    | Inherit -> config
    | Fixed b -> { config with Difftest.batch = max 1 b }
    | Auto -> { config with Difftest.batch = auto_batch ~trials:config.Difftest.trials }
  in
  let items =
    Array.of_list (Queue.build ~limit_per:options.limit_per ~seed:config.Difftest.seed programs xforms)
  in
  let n = Array.length items in
  (* --resume: journaled outcomes are replayed, not re-fuzzed. A torn tail
     record (campaign killed mid-write) is truncated and counted; mid-file
     corruption raises [Journal.Corrupt] — resuming from it would silently
     skip or re-run work. *)
  let resumed_map, recovered_records =
    if options.resume then
      match options.journal_path with
      | Some path ->
          let { Journal.records; recovered_records } =
            Journal.load_resume
              ~warn:(fun msg -> Printf.eprintf "engine: resume: %s\n%!" msg)
              path
          in
          (match Journal.header_of records with
          | Some h when h.Journal.seed <> config.Difftest.seed ->
              invalid_arg
                (Printf.sprintf
                   "engine: journal %s was written with --seed %d; this campaign runs with %d"
                   path h.Journal.seed config.Difftest.seed)
          | _ -> ());
          (Journal.completed records, recovered_records)
      | None -> ([], 0)
    else ([], 0)
  in
  let outcomes : Campaign.outcome option array = Array.make n None in
  let from_journal = Array.make n false in
  Array.iteri
    (fun i (it : Queue.item) ->
      match List.assoc_opt it.id resumed_map with
      | Some o ->
          outcomes.(i) <- Some o;
          from_journal.(i) <- true
      | None -> ())
    items;
  (* the journal is rewritten from scratch even on resume: parsed outcomes are
     re-emitted in queue order, so the file is always a clean, deterministic
     prefix of the campaign (a torn tail from a kill never accumulates) *)
  let sink line = match options.journal_sink with Some f -> f line | None -> () in
  let journal_oc =
    match options.journal_path with
    | None -> None
    | Some path ->
        (match Filename.dirname path with "." -> () | d -> mkdir_p d);
        Some (open_out path)
  in
  let emit_line line =
    (match journal_oc with
    | Some oc ->
        output_string oc line;
        output_char oc '\n'
    | None -> ());
    sink line
  in
  (match (journal_oc, options.journal_sink) with
  | None, None -> ()
  | _ ->
      emit_line
        (Journal.header_line
           {
             Journal.seed = config.Difftest.seed;
             trials = config.Difftest.trials;
             j = options.j;
             deadline_s = options.deadline_s;
             programs = List.map fst programs;
             xforms = List.map (fun (x : Transforms.Xform.t) -> x.name) xforms;
           });
      (match journal_oc with Some oc -> flush oc | None -> ()));
  let next_flush = ref 0 in
  let flush_journal () =
    if journal_oc <> None || options.journal_sink <> None then begin
      while !next_flush < n && outcomes.(!next_flush) <> None do
        (match outcomes.(!next_flush) with
        | Some o -> emit_line (Journal.instance_line o)
        | None -> ());
        incr next_flush
      done;
      match journal_oc with Some oc -> flush oc | None -> ()
    end
  in
  let telemetry = Telemetry.create ~progress:options.progress ~total:n ~j:options.j () in
  Telemetry.recovered_records telemetry recovered_records;
  (match options.on_telemetry with Some f -> f telemetry | None -> ());
  Array.iteri (fun i resumed -> if resumed then begin ignore i; Telemetry.resumed telemetry end) from_journal;
  flush_journal ();
  (* fresh work: everything the journal did not cover *)
  let fresh_idx = ref [] in
  Array.iteri (fun i o -> if o = None then fresh_idx := i :: !fresh_idx) outcomes;
  let fresh = Array.of_list (List.rev !fresh_idx) in
  let results : (int * Campaign.instance_result) list ref = ref [] in
  let thunk_of fi =
    let it = items.(fresh.(fi)) in
    fun () ->
      let config = { config with Difftest.seed = it.Queue.seed } in
      (* the plan cache is created here, inside the forked child: compiled
         plans hold closures, which must never cross the Marshal channel
         back to the parent, and a per-process cache keeps workers
         deterministic regardless of scheduling *)
      let plan_cache = Interp.Plan.Cache.create () in
      let kernel_cache = Interp.Kernel.Cache.create () in
      Campaign.run_instance ~plan_cache ~kernel_cache ~config ~static_gate:options.static_gate
        ~certify_gate:options.certify_gate
        ~program:(it.program_name, it.program)
        it.xform it.site
  in
  let slot_of = Hashtbl.create 16 in
  let on_start fi slot =
    let it = items.(fresh.(fi)) in
    Hashtbl.replace slot_of fi slot;
    Telemetry.running telemetry ~slot it.Queue.id
  in
  let on_done fi result =
    let i = fresh.(fi) in
    let it = items.(i) in
    (match Hashtbl.find_opt slot_of fi with
    | Some slot -> Telemetry.idle telemetry ~slot
    | None -> ());
    let o =
      match result with
      | Ok (ir : Campaign.instance_result) ->
          results := (i, ir) :: !results;
          Campaign.outcome_of_result ~seed:it.Queue.seed ir
      | Error (Timed_out { deadline_s }) ->
          killed_outcome ~item:it ~status:(Campaign.Timed_out { deadline_s })
            ~elapsed_s:deadline_s
      | Error (Crashed { detail }) ->
          killed_outcome ~item:it ~status:(Campaign.Crashed { detail }) ~elapsed_s:0.
    in
    outcomes.(i) <- Some o;
    (* persist the failing instance's reproduction bundle *)
    (match (options.corpus_dir, result) with
    | Some dir, Ok (ir : Campaign.instance_result) -> (
        match ir.report with
        | Some ({ Difftest.verdict = Difftest.Fail f; _ } as report) -> (
            let config = { config with Difftest.seed = it.Queue.seed } in
            match Testcase.of_report ~config ~original:it.program report with
            | Some tc -> (
                match
                  Corpus.save ~dir ~catalog ~program:it.program_name
                    ~xform:it.xform.Transforms.Xform.name ~klass:f.Difftest.klass ~site:it.site
                    tc
                with
                | Corpus.Saved _ -> Telemetry.case_saved telemetry
                | Corpus.Duplicate _ | Corpus.Not_reproducing -> ())
            | None -> ())
        | _ -> ())
    | _ -> ());
    Telemetry.record telemetry o;
    flush_journal ()
  in
  let run_local fis =
    ignore
      (map_pool ~j:options.j ~deadline_s:options.deadline_s
         ~on_start:(fun k slot -> on_start fis.(k) slot)
         ~on_done:(fun k r -> on_done fis.(k) r)
         (Array.map thunk_of fis))
  in
  (match options.remote with
  | None -> run_local (Array.init (Array.length fresh) Fun.id)
  | Some r ->
      (* remote dispatch reports through the same callbacks as the local
         pool; whatever it could not complete (every worker dead or
         quarantined) degrades to the local fork pool — a campaign never
         hangs or loses an instance because its workers died *)
      let leftovers =
        r.dispatch
          ~items:(Array.map (fun i -> items.(i)) fresh)
          ~config ~static_gate:options.static_gate ~certify_gate:options.certify_gate
          ~deadline_s:options.deadline_s ~telemetry ~on_start ~on_done
      in
      if leftovers <> [] then begin
        Telemetry.set_degraded telemetry;
        run_local (Array.of_list leftovers)
      end);
  flush_journal ();
  (if journal_oc <> None || options.journal_sink <> None then
     emit_line (Journal.footer_line (Telemetry.summary telemetry)));
  (match journal_oc with Some oc -> close_out oc | None -> ());
  if options.progress then Telemetry.finish telemetry;
  let all_outcomes = Array.to_list outcomes |> List.filter_map (fun o -> o) in
  let results = List.sort compare (List.map fst !results) |> List.map (fun i -> List.assoc i !results) in
  Campaign.assemble ~results xforms all_outcomes
