open Fuzzyflow

(* ---------------- endpoints ---------------- *)

type endpoint = { host : string; port : int }

let endpoint_to_string e = Printf.sprintf "%s:%d" e.host e.port

let endpoint_of_string s =
  match String.rindex_opt s ':' with
  | None -> invalid_arg ("Supervisor.endpoint_of_string: missing port in " ^ s)
  | Some i -> (
      let host = String.sub s 0 i in
      let host = if host = "" then "127.0.0.1" else host in
      match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
      | Some port when port > 0 && port < 65536 -> { host; port }
      | _ -> invalid_arg ("Supervisor.endpoint_of_string: bad port in " ^ s))

(* ---------------- failure taxonomy ---------------- *)

type failure_class =
  | Connect_refused of { detail : string }
  | Version_mismatch of { ours : int; theirs : int }
  | Disconnected of { during : string }
  | Decode_failure of { detail : string }
  | Hang of { waited_s : float }

let failure_class_name = function
  | Connect_refused _ -> "connect-refused"
  | Version_mismatch _ -> "version-mismatch"
  | Disconnected _ -> "disconnect"
  | Decode_failure _ -> "decode-failure"
  | Hang _ -> "hang"

let failure_class_detail = function
  | Connect_refused { detail } -> Printf.sprintf "connect refused: %s" detail
  | Version_mismatch { ours; theirs } ->
      Printf.sprintf "handshake version mismatch: ours %d, theirs %d" ours theirs
  | Disconnected { during } -> Printf.sprintf "disconnected during %s" during
  | Decode_failure { detail } -> Printf.sprintf "result decode failure: %s" detail
  | Hang { waited_s } -> Printf.sprintf "hang: no progress for %.1fs" waited_s

(* ---------------- supervision policy ---------------- *)

type policy = {
  connect_timeout_s : float;
  heartbeat_s : float;
  hang_grace_s : float;
  max_failures : int;
  backoff_base_s : float;
  backoff_max_s : float;
}

let default_policy =
  {
    connect_timeout_s = 5.;
    heartbeat_s = 10.;
    hang_grace_s = 10.;
    max_failures = 3;
    backoff_base_s = 0.05;
    backoff_max_s = 2.;
  }

type events = {
  on_failure : endpoint -> failure_class -> unit;
  on_quarantine : endpoint -> unit;
  on_requeue : int -> unit;
}

let null_events =
  { on_failure = (fun _ _ -> ()); on_quarantine = (fun _ -> ()); on_requeue = (fun _ -> ()) }

(* Bounded exponential backoff with deterministic jitter: the jitter fraction
   is FNV-1a over (endpoint, consecutive-failure count, instance seed) — the
   same seed construction as [Campaign.instance_seed] — so reconnect schedules
   are reproducible run to run, never synchronized across workers, and free of
   any wall-clock or PRNG state. *)
let backoff_delay ~policy ~ep ~failures ~seed =
  let exp = min (max 0 (failures - 1)) 16 in
  let base = Float.min (policy.backoff_base_s *. Float.pow 2. (float_of_int exp)) policy.backoff_max_s in
  let tag = Printf.sprintf "backoff:%s#%d" (endpoint_to_string ep) failures in
  let jitter = float_of_int (Campaign.instance_seed ~global:seed tag land 0xFFFF) /. 65536. in
  base *. (1. +. jitter)

(* ---------------- per-worker supervision state ---------------- *)

type wstate = W_disconnected | W_idle | W_busy of int  (** fresh-array index in flight *)

type wrk = {
  ep : endpoint;
  slot : int;
  mutable fd : Unix.file_descr option;
  mutable state : wstate;
  mutable failures : int;  (** consecutive; reset by a delivered result *)
  mutable next_try : float;  (** earliest reconnect attempt (backoff gate) *)
  mutable quarantined : bool;
  mutable busy_since : float;
  mutable last_seed : int;  (** seed of the last assigned instance; jitter source *)
  mutable idle_since : float;
  mutable ping_sent : float;  (** 0. = no ping outstanding *)
}

(* ---------------- the dispatch loop ---------------- *)

let now () = Unix.gettimeofday ()

let dispatch ~(policy : policy) ~(events : events) ~tick ~workers
    ~(items : Queue.item array) ~(config : Difftest.config) ~static_gate ~certify_gate
    ~deadline_s ~(telemetry : Telemetry.t) ~on_start ~on_done =
  let n = Array.length items in
  let graph_blob =
    (* one Marshal per distinct program, shared across its instances *)
    let memo = Hashtbl.create 8 in
    fun (it : Queue.item) ->
      match Hashtbl.find_opt memo it.Queue.program_name with
      | Some b -> b
      | None ->
          let b = Marshal.to_string it.Queue.program [] in
          Hashtbl.add memo it.Queue.program_name b;
          b
  in
  let assignment_of fi =
    let it = items.(fi) in
    {
      Wire.a_idx = fi;
      a_program = it.Queue.program_name;
      a_graph = graph_blob it;
      a_xform = it.Queue.xform.Transforms.Xform.name;
      a_site = it.Queue.site;
      a_config = { config with Difftest.seed = it.Queue.seed };
      a_static_gate = static_gate;
      a_certify_gate = certify_gate;
      a_deadline_s = deadline_s;
    }
  in
  let pending = Stdlib.Queue.create () in
  Array.iteri (fun fi _ -> Stdlib.Queue.push fi pending) items;
  let done_ = Array.make n false in
  let remaining = ref n in
  let ws =
    List.mapi
      (fun slot ep ->
        {
          ep;
          slot;
          fd = None;
          state = W_disconnected;
          failures = 0;
          next_try = 0.;
          quarantined = false;
          busy_since = 0.;
          last_seed = config.Difftest.seed;
          idle_since = 0.;
          ping_sent = 0.;
        })
      workers
  in
  let close_conn w =
    (match w.fd with
    | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
    | None -> ());
    w.fd <- None
  in
  let requeue fi =
    if not done_.(fi) then begin
      Stdlib.Queue.push fi pending;
      events.on_requeue fi
    end
  in
  (* Every failure is classified, counted, and drives the backoff /
     quarantine state machine. A failure mid-instance additionally requeues
     the instance (and counts as a worker loss): the instance itself is never
     lost, and because its verdict depends only on (instance, seed), a rerun
     anywhere produces the identical outcome. *)
  let fail_worker w cls =
    (match w.state with
    | W_busy fi ->
        Telemetry.lost_worker telemetry;
        requeue fi
    | _ -> ());
    close_conn w;
    w.state <- W_disconnected;
    w.failures <- w.failures + 1;
    events.on_failure w.ep cls;
    Telemetry.retry telemetry;
    if w.failures >= policy.max_failures then begin
      w.quarantined <- true;
      events.on_quarantine w.ep;
      Telemetry.quarantine telemetry
    end
    else
      w.next_try <-
        now () +. backoff_delay ~policy ~ep:w.ep ~failures:w.failures ~seed:w.last_seed
  in
  let try_connect w =
    match
      let fd = Wire.connect ~timeout_s:policy.connect_timeout_s ~host:w.ep.host ~port:w.ep.port in
      (try
         Wire.write_message ~timeout_s:policy.connect_timeout_s fd
           (Wire.Hello { proto = Wire.protocol_version });
         match Wire.read_message ~timeout_s:policy.connect_timeout_s fd with
         | Wire.Hello_ack { proto } when proto = Wire.protocol_version -> fd
         | Wire.Hello_ack { proto } ->
             raise (Wire.Bad_version { ours = Wire.protocol_version; theirs = proto })
         | _ -> raise (Wire.Protocol_error "unexpected handshake reply")
       with e ->
         (try Unix.close fd with Unix.Unix_error _ -> ());
         raise e)
    with
    | fd ->
        w.fd <- Some fd;
        w.state <- W_idle;
        w.idle_since <- now ();
        w.ping_sent <- 0.
    | exception Unix.Unix_error (err, _, _) ->
        fail_worker w (Connect_refused { detail = Unix.error_message err })
    | exception Wire.Bad_version { ours; theirs } ->
        fail_worker w (Version_mismatch { ours; theirs })
    | exception Wire.Timeout ->
        fail_worker w (Hang { waited_s = policy.connect_timeout_s })
    | exception Wire.Closed -> fail_worker w (Disconnected { during = "handshake" })
    | exception Wire.Protocol_error detail -> fail_worker w (Decode_failure { detail })
  in
  let assign w fi =
    match w.fd with
    | None -> requeue fi
    | Some fd -> (
        w.last_seed <- items.(fi).Queue.seed;
        match Wire.write_message ~timeout_s:policy.heartbeat_s fd (Wire.Assign (assignment_of fi)) with
        | () ->
            w.state <- W_busy fi;
            w.busy_since <- now ();
            on_start fi w.slot
        | exception (Wire.Closed | Unix.Unix_error _) ->
            requeue fi;
            fail_worker w (Disconnected { during = "assign" })
        | exception Wire.Timeout ->
            requeue fi;
            fail_worker w (Hang { waited_s = policy.heartbeat_s }))
  in
  let deliver w fi result =
    done_.(fi) <- true;
    decr remaining;
    w.state <- W_idle;
    w.idle_since <- now ();
    w.ping_sent <- 0.;
    w.failures <- 0;
    on_done fi result
  in
  let handle_message w =
    match w.fd with
    | None -> ()
    | Some fd -> (
        match Wire.read_message ~timeout_s:policy.heartbeat_s fd with
        | Wire.Result { r_idx; r_status; r_payload; r_cache_hits; r_cache_misses } -> (
            Telemetry.worker_cache telemetry ~hits:r_cache_hits ~misses:r_cache_misses;
            match w.state with
            | W_busy fi when fi = r_idx && not done_.(fi) -> (
                match (r_status, r_payload) with
                | Campaign.Completed, Some ir -> deliver w fi (Ok ir)
                | Campaign.Timed_out { deadline_s }, _ ->
                    deliver w fi (Error (Worker.Timed_out { deadline_s }))
                | Campaign.Crashed { detail }, _ ->
                    deliver w fi (Error (Worker.Crashed { detail }))
                | Campaign.Completed, None ->
                    fail_worker w
                      (Decode_failure { detail = "completed result carried no payload" }))
            | _ ->
                fail_worker w
                  (Decode_failure
                     { detail = Printf.sprintf "result for unexpected instance %d" r_idx }))
        | Wire.Refused { r_idx; r_detail } -> (
            match w.state with
            | W_busy fi when fi = r_idx ->
                (* the worker is alive but cannot run this assignment; the
                   instance goes back to the queue and the worker is treated
                   as failing (repeated refusals quarantine it) *)
                fail_worker w (Decode_failure { detail = "assignment refused: " ^ r_detail })
            | _ -> fail_worker w (Decode_failure { detail = "unsolicited refusal" }))
        | Wire.Pong _ ->
            w.ping_sent <- 0.;
            w.idle_since <- now ()
        | _ -> fail_worker w (Decode_failure { detail = "unexpected message" })
        | exception Wire.Closed ->
            fail_worker w
              (Disconnected
                 { during = (match w.state with W_busy _ -> "instance" | _ -> "idle") })
        | exception Wire.Timeout -> fail_worker w (Hang { waited_s = policy.heartbeat_s })
        | exception Wire.Bad_version { ours; theirs } ->
            fail_worker w (Version_mismatch { ours; theirs })
        | exception Wire.Protocol_error detail -> fail_worker w (Decode_failure { detail })
        | exception Unix.Unix_error _ -> fail_worker w (Disconnected { during = "read" }))
  in
  let health_check w =
    let t = now () in
    match (w.fd, w.state) with
    | Some _, W_busy fi ->
        if t -. w.busy_since > deadline_s +. policy.hang_grace_s then begin
          ignore fi;
          fail_worker w (Hang { waited_s = t -. w.busy_since })
        end
    | Some fd, W_idle ->
        if w.ping_sent > 0. then begin
          if t -. w.ping_sent > policy.heartbeat_s then
            fail_worker w (Hang { waited_s = t -. w.ping_sent })
        end
        else if t -. w.idle_since > policy.heartbeat_s then begin
          match Wire.write_message ~timeout_s:1.0 fd (Wire.Ping 0) with
          | () -> w.ping_sent <- t
          | exception (Wire.Closed | Unix.Unix_error _) ->
              fail_worker w (Disconnected { during = "heartbeat" })
          | exception Wire.Timeout -> fail_worker w (Hang { waited_s = 1.0 })
        end
    | _ -> ()
  in
  let alive () = List.exists (fun w -> not w.quarantined) ws in
  let prev_sigpipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  Fun.protect ~finally:(fun () ->
      List.iter
        (fun w ->
          (match w.fd with
          | Some fd -> ( try Wire.write_message ~timeout_s:0.5 fd Wire.Shutdown with _ -> ())
          | None -> ());
          close_conn w)
        ws;
      Sys.set_signal Sys.sigpipe prev_sigpipe)
  @@ fun () ->
  while !remaining > 0 && alive () do
    tick ();
    let t = now () in
    (* reconnect + assign pass *)
    List.iter
      (fun w ->
        if (not w.quarantined) && w.fd = None && t >= w.next_try
           && not (Stdlib.Queue.is_empty pending)
        then try_connect w)
      ws;
    List.iter
      (fun w ->
        if w.fd <> None && w.state = W_idle && not (Stdlib.Queue.is_empty pending) then
          assign w (Stdlib.Queue.pop pending))
      ws;
    (* wait for traffic *)
    let fds = List.filter_map (fun w -> if w.quarantined then None else w.fd) ws in
    (if fds = [] then Unix.sleepf 0.02
     else
       match Unix.select fds [] [] 0.05 with
       | readable, _, _ ->
           List.iter
             (fun w ->
               match w.fd with
               | Some fd when List.memq fd readable -> handle_message w
               | _ -> ())
             ws
       | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
    List.iter (fun w -> if w.fd <> None then health_check w) ws
  done;
  tick ();
  (* whatever is left (every worker quarantined) goes to the local fallback *)
  let leftovers = ref [] in
  for fi = n - 1 downto 0 do
    if not done_.(fi) then leftovers := fi :: !leftovers
  done;
  !leftovers

let executor ?(policy = default_policy) ?(events = null_events) ?(tick = fun () -> ()) ~workers
    () =
  {
    Worker.dispatch =
      (fun ~items ~config ~static_gate ~certify_gate ~deadline_s ~telemetry ~on_start ~on_done ->
        if workers = [] then List.init (Array.length items) Fun.id
        else
          dispatch ~policy ~events ~tick ~workers ~items ~config ~static_gate ~certify_gate
            ~deadline_s ~telemetry ~on_start ~on_done);
  }

(* ---------------- the worker side ---------------- *)

let listen_on ?host ~port () = Wire.listen_on ?host ~port ()

(* Worker-side compilation cache, persistent across assignments: both caches
   key by cutout digest and symbol valuation, so a requeued, re-seeded or
   structurally shared instance skips recompilation entirely. Per-assignment
   hit/miss deltas travel back in the Result frame and surface as a cache
   hit rate in the dispatcher's telemetry. *)
type wcache = {
  wc_plans : Interp.Plan.Cache.t;
  wc_kernels : Interp.Kernel.Cache.t;
}

let wcache_create () =
  {
    wc_plans = Interp.Plan.Cache.create ~capacity:256 ();
    wc_kernels = Interp.Kernel.Cache.create ~capacity:256 ();
  }

let wcache_stats c =
  let ph, pm = Interp.Plan.Cache.stats c.wc_plans in
  let kh, km = Interp.Kernel.Cache.stats c.wc_kernels in
  (ph + kh, pm + km)

exception Deadline_exceeded

(* In-process deadline enforcement: SIGALRM raises out of the running
   instance. Compiled plans and kernels hold closures, which cannot cross a
   Marshal boundary — so keeping the cache warm across assignments requires
   running in-process rather than in a supervised fork. The interpreter's
   own step limit bounds each trial; the alarm bounds everything else, and
   any escape (including Stack_overflow) is contained as a Crashed result. *)
let with_deadline ~deadline_s f =
  let prev =
    Sys.signal Sys.sigalrm (Sys.Signal_handle (fun _ -> raise Deadline_exceeded))
  in
  let disarm () =
    ignore (Unix.setitimer Unix.ITIMER_REAL { Unix.it_interval = 0.; it_value = 0. });
    Sys.set_signal Sys.sigalrm prev
  in
  ignore (Unix.setitimer Unix.ITIMER_REAL { Unix.it_interval = 0.; it_value = deadline_s });
  match f () with
  | v ->
      disarm ();
      Ok v
  | exception Deadline_exceeded ->
      disarm ();
      Error (Worker.Timed_out { deadline_s })
  | exception e ->
      disarm ();
      Error (Worker.Crashed { detail = Printexc.to_string e })

(* One assignment: compile through the session cache and run the instance
   in-process under the alarm-based deadline. A remote verdict is the same
   bytes a local one would be — verdicts are cache-oblivious (both caches
   key by program digest and symbol valuation). *)
let run_assignment ?caches ~catalog (a : Wire.assignment) =
  let caches = match caches with Some c -> c | None -> wcache_create () in
  let h0, m0 = wcache_stats caches in
  let result r_status r_payload =
    let h1, m1 = wcache_stats caches in
    Wire.Result
      {
        r_idx = a.Wire.a_idx;
        r_status;
        r_payload;
        r_cache_hits = h1 - h0;
        r_cache_misses = m1 - m0;
      }
  in
  match
    List.find_opt (fun (x : Transforms.Xform.t) -> x.Transforms.Xform.name = a.Wire.a_xform) catalog
  with
  | None -> Wire.Refused { r_idx = a.Wire.a_idx; r_detail = "unknown transformation " ^ a.Wire.a_xform }
  | Some xform -> (
      match (Marshal.from_string a.Wire.a_graph 0 : Sdfg.Graph.t) with
      | exception _ -> Wire.Refused { r_idx = a.Wire.a_idx; r_detail = "undecodable program graph" }
      | graph -> (
          let thunk () =
            Campaign.run_instance ~plan_cache:caches.wc_plans ~kernel_cache:caches.wc_kernels
              ~config:a.Wire.a_config ~static_gate:a.Wire.a_static_gate
              ~certify_gate:a.Wire.a_certify_gate ~program:(a.Wire.a_program, graph) xform
              a.Wire.a_site
          in
          match with_deadline ~deadline_s:a.Wire.a_deadline_s thunk with
          | Ok ir -> result Campaign.Completed (Some ir)
          | Error (Worker.Timed_out { deadline_s }) ->
              result (Campaign.Timed_out { deadline_s }) None
          | Error (Worker.Crashed { detail }) -> result (Campaign.Crashed { detail }) None))

let handle_session ?caches ~catalog fd =
  let caches = match caches with Some c -> c | None -> wcache_create () in
  let stop = ref false in
  while not !stop do
    match Wire.read_message fd with
    | Wire.Ping x -> Wire.write_message fd (Wire.Pong x)
    | Wire.Shutdown -> stop := true
    | Wire.Assign a -> Wire.write_message fd (run_assignment ~caches ~catalog a)
    | _ -> ()
  done

let serve_worker ?(once = false) ~catalog sock =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  (* one cache for the whole worker process: assignments across sessions
     share compiled plans and kernels *)
  let caches = wcache_create () in
  let continue = ref true in
  while !continue do
    (match Unix.accept sock with
    | client, _ ->
        (try
           match Wire.read_message ~timeout_s:30. client with
           | Wire.Hello { proto } when proto = Wire.protocol_version ->
               Wire.write_message client (Wire.Hello_ack { proto = Wire.protocol_version });
               handle_session ~caches ~catalog client
           | _ -> ()
         with
        | Wire.Closed | Wire.Timeout | Wire.Protocol_error _ | Wire.Bad_version _
        | Unix.Unix_error _
        ->
          ());
        (try Unix.close client with Unix.Unix_error _ -> ())
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
    if once then continue := false
  done
