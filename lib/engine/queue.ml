type item = {
  idx : int;
  id : string;
  program_name : string;
  program : Sdfg.Graph.t;
  xform : Transforms.Xform.t;
  site : Transforms.Xform.site;
  seed : int;
}

let take n l =
  let rec go i = function [] -> [] | x :: r -> if i >= n then [] else x :: go (i + 1) r in
  go 0 l

let build ?(limit_per = None) ~seed programs xforms =
  let items = ref [] in
  let idx = ref 0 in
  List.iter
    (fun (x : Transforms.Xform.t) ->
      List.iter
        (fun (pname, g) ->
          let sites = x.find g in
          let sites = match limit_per with Some n -> take n sites | None -> sites in
          List.iter
            (fun site ->
              let id = Fuzzyflow.Campaign.instance_id ~program:pname ~xform:x.name site in
              items :=
                {
                  idx = !idx;
                  id;
                  program_name = pname;
                  program = g;
                  xform = x;
                  site;
                  seed = Fuzzyflow.Campaign.instance_seed ~global:seed id;
                }
                :: !items;
              incr idx)
            sites)
        programs)
    xforms;
  List.rev !items
