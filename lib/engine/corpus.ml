open Fuzzyflow

type meta = {
  signature : string;
  name : string;
  program : string;
  xform : string;
  klass : string;
  site : Transforms.Xform.site;
}

type save_result = Saved of string | Duplicate of string | Not_reproducing

let class_name = function
  | Difftest.Semantics -> "semantics"
  | Difftest.Input_dependent -> "input-dependent"
  | Difftest.Invalid_code -> "invalid-code"

(* ---------------- signatures ---------------- *)

let fnv_hex parts =
  let h = ref 0xcbf29ce484222325L in
  let mix c =
    h := Int64.logxor !h (Int64.of_int (Char.code c));
    h := Int64.mul !h 0x100000001b3L
  in
  List.iter
    (fun p ->
      String.iter mix p;
      mix '\x1f')
    parts;
  Printf.sprintf "%012Lx" (Int64.logand !h 0xFFFFFFFFFFFFL)

(* the cutout's structural shape: what kind of subgraph was extracted and
   what its data interface looks like — deliberately ignores workload-specific
   node ids so the same bug found in two kernels shares a signature *)
let shape_parts (cut : Cutout.t) =
  let kind =
    match cut.kind with
    | Cutout.Dataflow { nodes; _ } -> Printf.sprintf "dataflow/%d" (List.length nodes)
    | Cutout.Multistate { states } -> Printf.sprintf "multistate/%d" (List.length states)
  in
  let decls =
    Sdfg.Graph.containers cut.program
    |> List.map (fun (c, (d : Sdfg.Graph.datadesc)) ->
           Printf.sprintf "%s:%s:%b" c
             (String.concat "x" (List.map Symbolic.Expr.to_string d.shape))
             d.transient)
    |> List.sort compare
  in
  (kind :: List.sort compare cut.input_config)
  @ List.sort compare cut.system_state @ decls

let signature ~xform ~klass (cut : Cutout.t) =
  fnv_hex ((xform :: class_name klass :: shape_parts cut))

(* ---------------- reproduction check ---------------- *)

let rec mkdir_p dir =
  if dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
  end

let check_reproduces ~catalog (m : meta) (tc : Testcase.t) =
  match Transforms.Registry.by_name catalog m.xform with
  | None -> (false, "unknown transformation " ^ m.xform)
  | Some x -> (
      let transformed = Sdfg.Graph.copy tc.cutout.program in
      match (try `Applied (x.apply transformed m.site) with e -> `Failed e) with
      | `Failed _ ->
          if m.klass = "invalid-code" then (true, "transformation still fails to apply")
          else (false, "transformation no longer applies")
      | `Applied _ ->
          if Sdfg.Validate.check transformed <> [] then
            if m.klass = "invalid-code" then (true, "transformed cutout still invalid")
            else (false, "transformed cutout became invalid")
          else
            let run g = Interp.Exec.run g ~symbols:tc.symbols ~inputs:tc.inputs in
            let orig = run tc.cutout.program in
            let xfrm = run transformed in
            (match
               Difftest.compare_outcomes ~threshold:Difftest.default_config.Difftest.threshold
                 ~system_state:tc.cutout.system_state orig xfrm
             with
            | Some kind -> (true, Format.asprintf "%a" Difftest.pp_failure kind)
            | None -> (false, "runs no longer diverge")))

(* ---------------- metadata ---------------- *)

let meta_file dir = Filename.concat dir "meta.json"

let meta_to_json (m : meta) =
  Journal.Json.Obj
    [
      ("signature", Journal.Json.Str m.signature);
      ("name", Journal.Json.Str m.name);
      ("program", Journal.Json.Str m.program);
      ("xform", Journal.Json.Str m.xform);
      ("class", Journal.Json.Str m.klass);
      ("site", Journal.json_of_site m.site);
    ]

let meta_of_json j =
  let open Journal.Json in
  {
    signature = str (field j "signature");
    name = str (field j "name");
    program = str (field j "program");
    xform = str (field j "xform");
    klass = str (field j "class");
    site = Journal.site_of_json (field j "site");
  }

let read_meta path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let content = really_input_string ic n in
  close_in ic;
  meta_of_json (Journal.Json.of_string content)

(* ---------------- save / load / replay ---------------- *)

let save ~dir ~catalog ~program ~xform ~klass ~site (tc : Testcase.t) =
  let signature = signature ~xform ~klass tc.cutout in
  let entry_dir = Filename.concat dir signature in
  if Sys.file_exists entry_dir then Duplicate entry_dir
  else begin
    let m = { signature; name = tc.name; program; xform; klass = class_name klass; site } in
    let ok, _detail = check_reproduces ~catalog m tc in
    if not ok then Not_reproducing
    else begin
      mkdir_p entry_dir;
      ignore (Testcase.save entry_dir tc);
      let oc = open_out (meta_file entry_dir) in
      output_string oc (Journal.Json.to_string (meta_to_json m));
      output_char oc '\n';
      close_out oc;
      Saved entry_dir
    end
  end

let entries dir =
  if not (Sys.file_exists dir) then []
  else
    Sys.readdir dir |> Array.to_list |> List.sort compare
    |> List.filter_map (fun sub ->
           let entry_dir = Filename.concat dir sub in
           let mf = meta_file entry_dir in
           if Sys.is_directory entry_dir && Sys.file_exists mf then
             match read_meta mf with m -> Some m | exception _ -> None
           else None)

type replay_outcome = { meta : meta; reproduced : bool; detail : string }

let replay_entry ~catalog ~dir (m : meta) =
  let entry_dir = Filename.concat dir m.signature in
  let dat =
    Sys.readdir entry_dir |> Array.to_list
    |> List.find_opt (fun f -> Filename.check_suffix f ".case.dat")
  in
  match dat with
  | None -> { meta = m; reproduced = false; detail = "no .case.dat in entry" }
  | Some f -> (
      match Testcase.load (Filename.concat entry_dir f) with
      | Ok tc ->
          let ok, detail = check_reproduces ~catalog m tc in
          { meta = m; reproduced = ok; detail }
      | Error { Testcase.reason; _ } ->
          { meta = m; reproduced = false; detail = "load failed: " ^ reason })

let replay ~catalog dir =
  List.map (fun m -> replay_entry ~catalog ~dir m) (entries dir)
