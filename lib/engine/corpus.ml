open Fuzzyflow

type meta = {
  signature : string;
  name : string;
  program : string;
  xform : string;
  klass : string;
  site : Transforms.Xform.site;
}

type save_result = Saved of string | Duplicate of string | Not_reproducing

let class_name = function
  | Difftest.Semantics -> "semantics"
  | Difftest.Input_dependent -> "input-dependent"
  | Difftest.Invalid_code -> "invalid-code"

(* ---------------- signatures ---------------- *)

let fnv_hex parts =
  let h = ref 0xcbf29ce484222325L in
  let mix c =
    h := Int64.logxor !h (Int64.of_int (Char.code c));
    h := Int64.mul !h 0x100000001b3L
  in
  List.iter
    (fun p ->
      String.iter mix p;
      mix '\x1f')
    parts;
  Printf.sprintf "%012Lx" (Int64.logand !h 0xFFFFFFFFFFFFL)

(* the cutout's structural shape: what kind of subgraph was extracted and
   what its data interface looks like — deliberately ignores workload-specific
   node ids so the same bug found in two kernels shares a signature *)
let shape_parts (cut : Cutout.t) =
  let kind =
    match cut.kind with
    | Cutout.Dataflow { nodes; _ } -> Printf.sprintf "dataflow/%d" (List.length nodes)
    | Cutout.Multistate { states } -> Printf.sprintf "multistate/%d" (List.length states)
  in
  let decls =
    Sdfg.Graph.containers cut.program
    |> List.map (fun (c, (d : Sdfg.Graph.datadesc)) ->
           Printf.sprintf "%s:%s:%b" c
             (String.concat "x" (List.map Symbolic.Expr.to_string d.shape))
             d.transient)
    |> List.sort compare
  in
  (kind :: List.sort compare cut.input_config)
  @ List.sort compare cut.system_state @ decls

let signature ~xform ~klass (cut : Cutout.t) =
  fnv_hex ((xform :: class_name klass :: shape_parts cut))

(* ---------------- reproduction check ---------------- *)

let rec mkdir_p dir =
  if dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
  end

let check_reproduces ~catalog (m : meta) (tc : Testcase.t) =
  match Transforms.Registry.by_name catalog m.xform with
  | None -> (false, "unknown transformation " ^ m.xform)
  | Some x -> (
      let transformed = Sdfg.Graph.copy tc.cutout.program in
      match (try `Applied (x.apply transformed m.site) with e -> `Failed e) with
      | `Failed _ ->
          if m.klass = "invalid-code" then (true, "transformation still fails to apply")
          else (false, "transformation no longer applies")
      | `Applied _ ->
          if Sdfg.Validate.check transformed <> [] then
            if m.klass = "invalid-code" then (true, "transformed cutout still invalid")
            else (false, "transformed cutout became invalid")
          else
            let run g = Interp.Exec.run g ~symbols:tc.symbols ~inputs:tc.inputs in
            let orig = run tc.cutout.program in
            let xfrm = run transformed in
            (match
               Difftest.compare_outcomes ~threshold:Difftest.default_config.Difftest.threshold
                 ~system_state:tc.cutout.system_state orig xfrm
             with
            | Some kind -> (true, Format.asprintf "%a" Difftest.pp_failure kind)
            | None -> (false, "runs no longer diverge")))

(* ---------------- metadata ---------------- *)

let meta_file dir = Filename.concat dir "meta.json"

let meta_to_json (m : meta) =
  Journal.Json.Obj
    [
      ("signature", Journal.Json.Str m.signature);
      ("name", Journal.Json.Str m.name);
      ("program", Journal.Json.Str m.program);
      ("xform", Journal.Json.Str m.xform);
      ("class", Journal.Json.Str m.klass);
      ("site", Journal.json_of_site m.site);
    ]

let meta_of_json j =
  let open Journal.Json in
  {
    signature = str (field j "signature");
    name = str (field j "name");
    program = str (field j "program");
    xform = str (field j "xform");
    klass = str (field j "class");
    site = Journal.site_of_json (field j "site");
  }

let read_meta path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let content = really_input_string ic n in
  close_in ic;
  meta_of_json (Journal.Json.of_string content)

(* ---------------- layout ----------------

   Entries live under [dir/<p>/<signature>/], where [p] is the first two hex
   characters of the signature — so no single directory's entry count grows
   with the corpus. Corpora written by earlier versions used a flat
   [dir/<signature>/] layout; both are readable, and a flat entry is renamed
   into its shard the first time it is touched (lazy migration), so old
   corpora converge to the sharded layout through normal use. *)

let shard_of signature =
  if String.length signature >= 2 then String.sub signature 0 2 else signature

let sharded_dir dir signature =
  Filename.concat (Filename.concat dir (shard_of signature)) signature

let is_hex c = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')

let is_shard_name s = String.length s = 2 && String.for_all is_hex s

(* Where the entry lives, in either layout; migrates a legacy flat entry
   into its shard (best-effort: if the rename fails, the flat path still
   works). [None] when the signature has no entry at all. *)
let find_entry_dir dir signature =
  let sharded = sharded_dir dir signature in
  if Sys.file_exists sharded then Some sharded
  else
    let flat = Filename.concat dir signature in
    if not (Sys.file_exists flat) then None
    else begin
      mkdir_p (Filename.dirname sharded);
      match Unix.rename flat sharded with
      | () -> Some sharded
      | exception Unix.Unix_error _ -> Some flat
    end

(* ---------------- save / load / replay ---------------- *)

let save ~dir ~catalog ~program ~xform ~klass ~site (tc : Testcase.t) =
  let signature = signature ~xform ~klass tc.cutout in
  match find_entry_dir dir signature with
  | Some entry_dir -> Duplicate entry_dir
  | None ->
      let entry_dir = sharded_dir dir signature in
      let m = { signature; name = tc.name; program; xform; klass = class_name klass; site } in
      let ok, _detail = check_reproduces ~catalog m tc in
      if not ok then Not_reproducing
      else begin
        mkdir_p entry_dir;
        ignore (Testcase.save entry_dir tc);
        let oc = open_out (meta_file entry_dir) in
        output_string oc (Journal.Json.to_string (meta_to_json m));
        output_char oc '\n';
        close_out oc;
        Saved entry_dir
      end

let entry_of_dir entry_dir =
  let mf = meta_file entry_dir in
  if Sys.is_directory entry_dir && Sys.file_exists mf then
    match read_meta mf with m -> Some m | exception _ -> None
  else None

let entries dir =
  if not (Sys.file_exists dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.concat_map (fun sub ->
           let path = Filename.concat dir sub in
           if is_shard_name sub && Sys.is_directory path && not (Sys.file_exists (meta_file path))
           then
             Sys.readdir path |> Array.to_list
             |> List.filter_map (fun e -> entry_of_dir (Filename.concat path e))
           else Option.to_list (entry_of_dir path))
    |> List.sort (fun a b -> compare a.signature b.signature)

type replay_outcome = { meta : meta; reproduced : bool; detail : string }

let replay_entry ~catalog ~dir (m : meta) =
  match find_entry_dir dir m.signature with
  | None -> { meta = m; reproduced = false; detail = "entry directory missing" }
  | Some entry_dir -> (
      let dat =
        Sys.readdir entry_dir |> Array.to_list
        |> List.find_opt (fun f -> Filename.check_suffix f ".case.dat")
      in
      match dat with
      | None -> { meta = m; reproduced = false; detail = "no .case.dat in entry" }
      | Some f -> (
          match Testcase.load (Filename.concat entry_dir f) with
          | Ok tc ->
              let ok, detail = check_reproduces ~catalog m tc in
              { meta = m; reproduced = ok; detail }
          | Error { Testcase.reason; _ } ->
              { meta = m; reproduced = false; detail = "load failed: " ^ reason }))

let replay ~catalog dir =
  List.map (fun m -> replay_entry ~catalog ~dir m) (entries dir)
