open Fuzzyflow

type config = {
  port : int;
  http_port : int option;
  workers : Supervisor.endpoint list;
  policy : Supervisor.policy;
  j : int;
  deadline_s : float;
  journal_dir : string;
  corpus_dir : string option;
  max_campaigns : int option;
  log : string -> unit;
}

let default_config =
  {
    port = 7400;
    http_port = None;
    workers = [];
    policy = Supervisor.default_policy;
    j = 1;
    deadline_s = 60.;
    journal_dir = "_service";
    corpus_dir = None;
    max_campaigns = None;
    log = (fun msg -> Printf.eprintf "service: %s\n%!" msg);
  }

let rec mkdir_p dir =
  if dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* ---------------- HTTP/JSON telemetry endpoint ---------------- *)

type state = {
  mutable status : string;  (** "idle" | "running" *)
  mutable campaigns : int;  (** submissions completed *)
  mutable telemetry : Telemetry.t option;  (** live handle during a campaign *)
  mutable journal_rev : string list;  (** current/last campaign journal, reversed *)
}

let http_body st path =
  match path with
  | "/telemetry" ->
      let counters =
        match st.telemetry with
        | Some t -> Telemetry.snapshot t
        | None -> Journal.Json.Null
      in
      ( "application/json",
        Journal.Json.to_string
          (Journal.Json.Obj
             [
               ("status", Journal.Json.Str st.status);
               ("campaigns", Journal.Json.Num (float_of_int st.campaigns));
               ("counters", counters);
             ])
        ^ "\n" )
  | "/journal" ->
      ("application/x-ndjson", String.concat "\n" (List.rev st.journal_rev) ^ "\n")
  | _ -> ("text/plain", "not found\n")

(* One-shot HTTP/1.0 exchange on an already-accepted client: read what
   arrived, answer, close. Deliberately minimal — a telemetry peek, not a web
   server — and bounded so a stuck client cannot stall the campaign. *)
let http_answer st client =
  let buf = Bytes.create 4096 in
  (match Unix.select [ client ] [] [] 0.2 with
  | [ _ ], _, _ -> (
      match Unix.read client buf 0 4096 with
      | 0 -> ()
      | len ->
          let req = Bytes.sub_string buf 0 len in
          let path =
            match String.split_on_char ' ' (List.hd (String.split_on_char '\r' req)) with
            | _meth :: path :: _ -> path
            | _ -> "/"
          in
          let status, (ctype, body) =
            match http_body st path with
            | ("text/plain", _) as r when path <> "/" -> ("404 Not Found", r)
            | r -> ("200 OK", r)
          in
          let resp =
            Printf.sprintf
              "HTTP/1.0 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
              status ctype (String.length body) body
          in
          ignore (Unix.write_substring client resp 0 (String.length resp))
      | exception Unix.Unix_error _ -> ())
  | _ -> ()
  | exception Unix.Unix_error _ -> ());
  try Unix.close client with Unix.Unix_error _ -> ()

(* Drain any waiting HTTP clients without blocking. Called from the select
   loop and — via the supervisor's [tick] and the journal sink — from inside
   a running campaign, so live telemetry stays live mid-campaign. *)
let http_tick st = function
  | None -> ()
  | Some (sock, _) -> (
      let continue = ref true in
      while !continue do
        match Unix.accept sock with
        | client, _ -> http_answer st client
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> continue := false
        | exception Unix.Unix_error _ -> continue := false
      done)

(* ---------------- campaign execution ---------------- *)

let run_submission ~config ~resolve ~catalog_of ~st ~http client (sub : Wire.submission) =
  let unknown =
    List.filter (fun w -> resolve w = None) sub.Wire.s_workloads
  in
  if sub.Wire.s_workloads = [] then
    Wire.write_message ~timeout_s:10. client
      (Wire.Done { ok = false; detail = "no workloads in submission" })
  else if unknown <> [] then
    Wire.write_message ~timeout_s:10. client
      (Wire.Done { ok = false; detail = "unknown workloads: " ^ String.concat ", " unknown })
  else begin
    let programs =
      List.map (fun w -> (w, Option.get (resolve w))) sub.Wire.s_workloads
    in
    let xforms = catalog_of sub.Wire.s_correct in
    let dconfig =
      {
        Difftest.default_config with
        trials = sub.Wire.s_trials;
        seed = sub.Wire.s_seed;
        max_size = sub.Wire.s_max_size;
        concretization = sub.Wire.s_defines;
        batch = max 1 sub.Wire.s_batch;
      }
    in
    let journal_path =
      Filename.concat config.journal_dir (Printf.sprintf "campaign-%03d.jsonl" st.campaigns)
    in
    st.status <- "running";
    st.journal_rev <- [];
    let client_gone = ref false in
    let sink line =
      st.journal_rev <- line :: st.journal_rev;
      http_tick st http;
      if not !client_gone then
        try Wire.write_message ~timeout_s:5. client (Wire.Journal_line line)
        with Wire.Closed | Wire.Timeout | Unix.Unix_error _ ->
          (* the submitting client went away; the campaign finishes anyway
             and its journal stays on disk *)
          client_gone := true
    in
    let remote =
      if config.workers = [] then None
      else
        Some
          (Supervisor.executor ~policy:config.policy
             ~tick:(fun () -> http_tick st http)
             ~workers:config.workers ())
    in
    let options =
      {
        Worker.default_options with
        j = config.j;
        deadline_s = config.deadline_s;
        journal_path = Some journal_path;
        corpus_dir = config.corpus_dir;
        limit_per = sub.Wire.s_limit_per;
        static_gate = sub.Wire.s_static_gate;
        certify_gate = sub.Wire.s_certify_gate;
        remote;
        journal_sink = Some sink;
        on_telemetry = Some (fun t -> st.telemetry <- Some t);
      }
    in
    match Worker.run_campaign ~options ~config:dconfig programs xforms with
    | campaign ->
        st.status <- "idle";
        st.campaigns <- st.campaigns + 1;
        config.log
          (Printf.sprintf "campaign %d done: %d instances, %d failed (journal %s)"
             (st.campaigns - 1) campaign.Campaign.total_instances campaign.Campaign.total_failed
             journal_path);
        if not !client_gone then begin
          try
            Wire.write_message ~timeout_s:10. client (Wire.Table (Campaign.to_table campaign));
            Wire.write_message ~timeout_s:10. client (Wire.Done { ok = true; detail = "" })
          with Wire.Closed | Wire.Timeout | Unix.Unix_error _ -> ()
        end
    | exception e ->
        st.status <- "idle";
        config.log (Printf.sprintf "campaign failed: %s" (Printexc.to_string e));
        if not !client_gone then begin
          try
            Wire.write_message ~timeout_s:10. client
              (Wire.Done { ok = false; detail = Printexc.to_string e })
          with Wire.Closed | Wire.Timeout | Unix.Unix_error _ -> ()
        end
  end

(* ---------------- the daemon ---------------- *)

let serve ?(config = default_config) ~resolve ~catalog_of () =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  mkdir_p config.journal_dir;
  let csock, cport = Wire.listen_on ~port:config.port () in
  let http =
    Option.map
      (fun p ->
        let sock, port = Wire.listen_on ~port:p () in
        Unix.set_nonblock sock;
        (sock, port))
      config.http_port
  in
  let st = { status = "idle"; campaigns = 0; telemetry = None; journal_rev = [] } in
  (* the ready line goes to stdout so scripts can await/parse it *)
  Printf.printf "service: listening control=127.0.0.1:%d%s workers=[%s]\n%!" cport
    (match http with Some (_, p) -> Printf.sprintf " http=127.0.0.1:%d" p | None -> "")
    (String.concat "," (List.map Supervisor.endpoint_to_string config.workers));
  let stop = ref false in
  while not !stop do
    let fds = csock :: (match http with Some (s, _) -> [ s ] | None -> []) in
    (match Unix.select fds [] [] 1.0 with
    | readable, _, _ ->
        (match http with
        | Some (hs, _) when List.memq hs readable -> http_tick st http
        | _ -> ());
        if List.memq csock readable then begin
          match Unix.accept csock with
          | client, _ ->
              (try
                 match Wire.read_message ~timeout_s:30. client with
                 | Wire.Submit sub ->
                     run_submission ~config ~resolve ~catalog_of ~st ~http client sub;
                     (match config.max_campaigns with
                     | Some m when st.campaigns >= m -> stop := true
                     | _ -> ())
                 | Wire.Shutdown ->
                     (try Wire.write_message ~timeout_s:5. client (Wire.Done { ok = true; detail = "bye" })
                      with _ -> ());
                     stop := true
                 | _ ->
                     Wire.write_message ~timeout_s:5. client
                       (Wire.Done { ok = false; detail = "expected a submission" })
               with
              | Wire.Closed | Wire.Timeout | Wire.Protocol_error _ | Wire.Bad_version _
              | Unix.Unix_error _
              ->
                ());
              (try Unix.close client with Unix.Unix_error _ -> ())
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        end
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
  done;
  (try Unix.close csock with Unix.Unix_error _ -> ());
  match http with Some (s, _) -> ( try Unix.close s with Unix.Unix_error _ -> ()) | None -> ()

(* ---------------- the submitting client ---------------- *)

let submit ?(timeout_s = 600.) ~host ~port ?(on_line = fun (_ : string) -> ())
    (sub : Wire.submission) =
  match Wire.connect ~timeout_s:10. ~host ~port with
  | exception Unix.Unix_error (err, _, _) ->
      Error (Printf.sprintf "cannot reach service at %s:%d: %s" host port (Unix.error_message err))
  | exception Wire.Timeout ->
      Error (Printf.sprintf "cannot reach service at %s:%d: connect timed out" host port)
  | fd ->
      let finally () = try Unix.close fd with Unix.Unix_error _ -> () in
      Fun.protect ~finally @@ fun () ->
      (match Wire.write_message ~timeout_s:10. fd (Wire.Submit sub) with
      | () -> (
          let table = ref None in
          let rec go () =
            match Wire.read_message ~timeout_s fd with
            | Wire.Journal_line l ->
                on_line l;
                go ()
            | Wire.Table t ->
                table := Some t;
                go ()
            | Wire.Done { ok = true; _ } -> Ok !table
            | Wire.Done { ok = false; detail } -> Error detail
            | _ -> go ()
          in
          try go () with
          | Wire.Closed -> Error "service closed the connection mid-campaign"
          | Wire.Timeout -> Error "timed out waiting for the service"
          | Wire.Protocol_error d -> Error ("protocol error: " ^ d)
          | Wire.Bad_version { ours; theirs } ->
              Error (Printf.sprintf "protocol version mismatch: ours %d, service %d" ours theirs))
      | exception (Wire.Closed | Wire.Timeout) -> Error "service rejected the submission")

let shutdown ~host ~port =
  match Wire.connect ~timeout_s:5. ~host ~port with
  | exception _ -> false
  | fd ->
      let ok =
        match
          Wire.write_message ~timeout_s:5. fd Wire.Shutdown;
          Wire.read_message ~timeout_s:5. fd
        with
        | Wire.Done { ok; _ } -> ok
        | _ -> false
        | exception _ -> false
      in
      (try Unix.close fd with Unix.Unix_error _ -> ());
      ok
