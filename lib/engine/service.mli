(** The distributed campaign daemon and its submitting client.

    [serve] accepts {!Wire.Submit} messages on a control socket, runs each
    submission as one campaign — dispatching instances to the configured
    remote workers through {!Supervisor.executor}, degrading to the local
    fork pool if the fleet dies — and streams every journal line back to the
    submitter as it is flushed. An optional HTTP/1.0 endpoint serves live
    JSON telemetry ([/telemetry]) and the current journal ([/journal]);
    it is polled from inside the running campaign via the supervisor's
    [tick] hook, so it stays live mid-campaign.

    Campaign verdicts are byte-identical to a local [-j 1] run of the same
    submission: seeds derive from (instance, campaign seed) only, and the
    journal is flushed in queue order. *)

type config = {
  port : int;  (** control port; [0] picks an ephemeral one *)
  http_port : int option;  (** telemetry endpoint; [None] disables it *)
  workers : Supervisor.endpoint list;  (** empty: always run locally *)
  policy : Supervisor.policy;
  j : int;  (** local pool width (fallback and worker-less runs) *)
  deadline_s : float;  (** per-instance wall-clock budget *)
  journal_dir : string;  (** journals land here as campaign-NNN.jsonl *)
  corpus_dir : string option;
  max_campaigns : int option;  (** exit after this many submissions (tests) *)
  log : string -> unit;  (** operational log lines (default: stderr) *)
}

val default_config : config

(** Run the daemon until a {!Wire.Shutdown} arrives (or [max_campaigns] is
    reached). [resolve] maps a workload name to its graph; [catalog_of] maps
    the submission's [s_correct] flag to the transformation catalog. Prints a
    parseable ["service: listening ..."] ready line on stdout. *)
val serve :
  ?config:config ->
  resolve:(string -> Sdfg.Graph.t option) ->
  catalog_of:(bool -> Transforms.Xform.t list) ->
  unit ->
  unit

(** Submit a campaign and stream it: [on_line] receives each journal line
    as the service flushes it. Returns the rendered campaign table on
    success ([None] if the service never sent one), or a human-readable
    error. [timeout_s] bounds the silence between messages, not the whole
    campaign. *)
val submit :
  ?timeout_s:float ->
  host:string ->
  port:int ->
  ?on_line:(string -> unit) ->
  Wire.submission ->
  (string option, string) result

(** Ask a daemon to exit; [true] if it acknowledged. *)
val shutdown : host:string -> port:int -> bool
