(** The distributed campaign wire protocol: versioned, length-prefixed frames
    carrying [Marshal]-encoded messages, each guarded by an FNV-1a64 payload
    checksum.

    Frame layout (big-endian): ["FFWP"] magic (4 bytes) · protocol version
    (2) · payload length (4) · FNV-1a64 payload checksum (8) · payload.
    The checksum catches frames truncated or garbled in flight — Marshal
    alone can silently accept a prefix whose trailing bytes were corrupted —
    and the version field rejects a mismatched peer before any payload is
    decoded.

    Closures never cross this wire: assignments name transformations by
    registry name and carry the program graph as marshalled data; plans and
    kernels are compiled worker-side into a per-session cache keyed by
    cutout digest and symbol valuation. *)

val protocol_version : int

val magic : string

val header_len : int

val max_frame_len : int

(** Peer closed the connection (EOF, reset, or broken pipe) mid-frame. *)
exception Closed

(** The per-call deadline elapsed before a full frame moved. *)
exception Timeout

(** Corrupt frame: bad magic, implausible length, checksum mismatch, or an
    undecodable payload. The connection is unusable afterwards. *)
exception Protocol_error of string

(** The peer speaks a different protocol version (read from the frame
    header, before any payload decode). *)
exception Bad_version of { ours : int; theirs : int }

(** FNV-1a over a string, 64-bit — the frame checksum. Exposed for tests
    and for crafting deliberately corrupt frames in the fault lab. *)
val fnv1a64 : string -> int64

(** One campaign instance shipped to a remote worker. *)
type assignment = {
  a_idx : int;  (** dispatcher-side index; echoed back in the result *)
  a_program : string;
  a_graph : string;  (** [Marshal] of the program graph *)
  a_xform : string;  (** registry name; resolved worker-side *)
  a_site : Transforms.Xform.site;
  a_config : Fuzzyflow.Difftest.config;  (** per-instance seed already substituted *)
  a_static_gate : bool;
  a_certify_gate : bool;
  a_deadline_s : float;
}

(** A campaign submission to the daemon's control port. *)
type submission = {
  s_workloads : string list;
  s_correct : bool;  (** correct-variant catalog instead of as-shipped *)
  s_trials : int;
  s_seed : int;
  s_max_size : int;
  s_defines : (string * int) list;  (** concretization symbol values *)
  s_limit_per : int option;
  s_static_gate : bool;
  s_certify_gate : bool;
  s_batch : int;  (** trial-loop batch width (1 = serial plan path) *)
}

type message =
  | Hello of { proto : int }  (** client → worker handshake *)
  | Hello_ack of { proto : int }
  | Ping of int  (** idle-connection heartbeat; echoed as [Pong] *)
  | Pong of int
  | Assign of assignment
  | Result of {
      r_idx : int;
      r_status : Fuzzyflow.Campaign.exec_status;
      r_payload : Fuzzyflow.Campaign.instance_result option;
          (** [Some] iff [r_status] is [Completed] *)
      r_cache_hits : int;
      r_cache_misses : int;
          (** worker-side plan/kernel cache traffic while running this
              assignment; the dispatcher folds them into telemetry *)
    }
  | Refused of { r_idx : int; r_detail : string }
      (** the worker cannot run this assignment (unknown transformation,
          undecodable graph); the dispatcher requeues it elsewhere *)
  | Shutdown
  | Submit of submission  (** client → daemon *)
  | Journal_line of string  (** daemon → client: streamed journal record *)
  | Table of string  (** daemon → client: final campaign table *)
  | Done of { ok : bool; detail : string }

(** [encode_frame ?proto payload] builds a raw frame around an arbitrary
    payload; [encode] marshals a message first. [?proto] lets tests forge a
    version-mismatched frame. *)
val encode_frame : ?proto:int -> string -> string

val encode : ?proto:int -> message -> string

(** Write a full frame, bounded by [timeout_s] (default: block).
    @raise Closed on a dead peer, [Timeout] past the deadline. *)
val write_message : ?timeout_s:float -> Unix.file_descr -> message -> unit

(** Read one full frame, bounded by [timeout_s] (default: block).
    @raise Closed on EOF, [Timeout] past the deadline, [Bad_version] on a
    version-mismatched header, [Protocol_error] on corruption. *)
val read_message : ?timeout_s:float -> Unix.file_descr -> message

(** TCP connect with a hard timeout; the returned descriptor is blocking.
    @raise Unix.Unix_error (e.g. [ECONNREFUSED]) or [Timeout]. *)
val connect : timeout_s:float -> host:string -> port:int -> Unix.file_descr

(** Bind + listen on [host] (default loopback); [port = 0] picks an
    ephemeral port. Returns the socket and the actual bound port. *)
val listen_on : ?host:Unix.inet_addr -> port:int -> unit -> Unix.file_descr * int
