module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  let escape_string s =
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf

  let number_string f =
    if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
    else Printf.sprintf "%.17g" f

  let rec to_string = function
    | Null -> "null"
    | Bool b -> if b then "true" else "false"
    | Num f -> number_string f
    | Str s -> escape_string s
    | Arr l -> "[" ^ String.concat "," (List.map to_string l) ^ "]"
    | Obj kvs ->
        "{"
        ^ String.concat "," (List.map (fun (k, v) -> escape_string k ^ ":" ^ to_string v) kvs)
        ^ "}"

  (* recursive-descent parser over a string cursor *)
  type cursor = { s : string; mutable pos : int }

  let fail c msg = failwith (Printf.sprintf "json: %s at offset %d" msg c.pos)
  let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

  let advance c = c.pos <- c.pos + 1

  let rec skip_ws c =
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance c;
        skip_ws c
    | _ -> ()

  let expect c ch =
    match peek c with
    | Some x when x = ch -> advance c
    | _ -> fail c (Printf.sprintf "expected '%c'" ch)

  let parse_literal c lit v =
    if
      c.pos + String.length lit <= String.length c.s
      && String.sub c.s c.pos (String.length lit) = lit
    then begin
      c.pos <- c.pos + String.length lit;
      v
    end
    else fail c ("expected " ^ lit)

  let parse_string_raw c =
    expect c '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek c with
      | None -> fail c "unterminated string"
      | Some '"' -> advance c
      | Some '\\' -> (
          advance c;
          match peek c with
          | Some '"' -> Buffer.add_char buf '"'; advance c; go ()
          | Some '\\' -> Buffer.add_char buf '\\'; advance c; go ()
          | Some '/' -> Buffer.add_char buf '/'; advance c; go ()
          | Some 'n' -> Buffer.add_char buf '\n'; advance c; go ()
          | Some 'r' -> Buffer.add_char buf '\r'; advance c; go ()
          | Some 't' -> Buffer.add_char buf '\t'; advance c; go ()
          | Some 'b' -> Buffer.add_char buf '\b'; advance c; go ()
          | Some 'f' -> Buffer.add_char buf '\012'; advance c; go ()
          | Some 'u' ->
              advance c;
              if c.pos + 4 > String.length c.s then fail c "bad \\u escape";
              let code = int_of_string ("0x" ^ String.sub c.s c.pos 4) in
              c.pos <- c.pos + 4;
              (* keep it simple: encode as UTF-8 *)
              if code < 0x80 then Buffer.add_char buf (Char.chr code)
              else if code < 0x800 then begin
                Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end
              else begin
                Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end;
              go ()
          | _ -> fail c "bad escape")
      | Some ch ->
          Buffer.add_char buf ch;
          advance c;
          go ()
    in
    go ();
    Buffer.contents buf

  let parse_number c =
    let start = c.pos in
    let is_num_char ch =
      match ch with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while (match peek c with Some ch -> is_num_char ch | None -> false) do
      advance c
    done;
    if c.pos = start then fail c "expected number";
    float_of_string (String.sub c.s start (c.pos - start))

  let rec parse_value c =
    skip_ws c;
    match peek c with
    | Some '{' ->
        advance c;
        skip_ws c;
        if peek c = Some '}' then begin advance c; Obj [] end
        else begin
          let kvs = ref [] in
          let rec members () =
            skip_ws c;
            let k = parse_string_raw c in
            skip_ws c;
            expect c ':';
            let v = parse_value c in
            kvs := (k, v) :: !kvs;
            skip_ws c;
            match peek c with
            | Some ',' -> advance c; members ()
            | Some '}' -> advance c
            | _ -> fail c "expected ',' or '}'"
          in
          members ();
          Obj (List.rev !kvs)
        end
    | Some '[' ->
        advance c;
        skip_ws c;
        if peek c = Some ']' then begin advance c; Arr [] end
        else begin
          let elems = ref [] in
          let rec elements () =
            let v = parse_value c in
            elems := v :: !elems;
            skip_ws c;
            match peek c with
            | Some ',' -> advance c; elements ()
            | Some ']' -> advance c
            | _ -> fail c "expected ',' or ']'"
          in
          elements ();
          Arr (List.rev !elems)
        end
    | Some '"' -> Str (parse_string_raw c)
    | Some 't' -> parse_literal c "true" (Bool true)
    | Some 'f' -> parse_literal c "false" (Bool false)
    | Some 'n' -> parse_literal c "null" Null
    | Some _ -> Num (parse_number c)
    | None -> fail c "unexpected end of input"

  let of_string s =
    let c = { s; pos = 0 } in
    let v = parse_value c in
    skip_ws c;
    if c.pos <> String.length s then fail c "trailing garbage";
    v

  let mem t k = match t with Obj kvs -> List.assoc_opt k kvs | _ -> None

  let field t k =
    match mem t k with Some v -> v | None -> failwith ("json: missing field " ^ k)

  let str = function Str s -> s | _ -> failwith "json: expected string"
  let num = function Num f -> f | _ -> failwith "json: expected number"
  let int t = int_of_float (num t)
  let bool = function Bool b -> b | _ -> failwith "json: expected bool"
  let arr = function Arr l -> l | _ -> failwith "json: expected array"
end

open Fuzzyflow

type header = {
  seed : int;
  trials : int;
  j : int;
  deadline_s : float;
  programs : string list;
  xforms : string list;
}

type footer = {
  total : int;
  failed : int;
  proved : int;
  killed : int;
  trials_spent : int;
  wall_s : float;
  instances_per_s : float;
  retries : int;
  quarantined : int;
  worker_lost : int;
  degraded : bool;
  recovered_records : int;
}

type record =
  | Header of header
  | Instance of Campaign.outcome
  | Footer of footer

(* ---------------- emit ---------------- *)

let json_of_site (s : Transforms.Xform.site) =
  Json.Obj
    [
      ("state", Json.Num (float_of_int s.state));
      ("nodes", Json.Arr (List.map (fun n -> Json.Num (float_of_int n)) s.nodes));
      ("states", Json.Arr (List.map (fun n -> Json.Num (float_of_int n)) s.states));
      ("descr", Json.Str s.descr);
    ]

let site_of_json j =
  {
    Transforms.Xform.state = Json.int (Json.field j "state");
    nodes = List.map Json.int (Json.arr (Json.field j "nodes"));
    states = List.map Json.int (Json.arr (Json.field j "states"));
    descr = Json.str (Json.field j "descr");
  }

let class_name = function
  | Difftest.Semantics -> "semantics"
  | Difftest.Input_dependent -> "input-dependent"
  | Difftest.Invalid_code -> "invalid-code"

let class_of_name = function
  | "semantics" -> Difftest.Semantics
  | "input-dependent" -> Difftest.Input_dependent
  | "invalid-code" -> Difftest.Invalid_code
  | s -> failwith ("journal: unknown failure class " ^ s)

let header_line (h : header) =
  Json.to_string
    (Json.Obj
       [
         ("type", Json.Str "header");
         ("version", Json.Num 1.);
         ("seed", Json.Num (float_of_int h.seed));
         ("trials", Json.Num (float_of_int h.trials));
         ("j", Json.Num (float_of_int h.j));
         ("deadline_s", Json.Num h.deadline_s);
         ("programs", Json.Arr (List.map (fun p -> Json.Str p) h.programs));
         ("xforms", Json.Arr (List.map (fun x -> Json.Str x) h.xforms));
       ])

let instance_line (o : Campaign.outcome) =
  let status_fields =
    match o.o_status with
    | Campaign.Completed -> []
    | Campaign.Timed_out { deadline_s } -> [ ("deadline_s", Json.Num deadline_s) ]
    | Campaign.Crashed { detail } -> [ ("crash_detail", Json.Str detail) ]
  in
  let verdict_fields =
    match o.o_verdict with
    | Campaign.O_passed -> [ ("verdict", Json.Str "pass") ]
    | Campaign.O_proved -> [ ("verdict", Json.Str "proved") ]
    | Campaign.O_killed -> [ ("verdict", Json.Str "killed") ]
    | Campaign.O_failed { klass; first_trial; failing_trials } ->
        [
          ("verdict", Json.Str "fail");
          ("class", Json.Str (class_name klass));
          ("first_trial", Json.Num (float_of_int first_trial));
          ("failing_trials", Json.Num (float_of_int failing_trials));
        ]
  in
  Json.to_string
    (Json.Obj
       ([
          ("type", Json.Str "instance");
          ( "id",
            Json.Str (Campaign.instance_id ~program:o.o_program ~xform:o.o_xform o.o_site) );
          ("program", Json.Str o.o_program);
          ("xform", Json.Str o.o_xform);
          ("site", json_of_site o.o_site);
          ("status", Json.Str (Campaign.status_name o.o_status));
        ]
       @ status_fields @ verdict_fields
       (* deliberately no wall-clock field: instance records are bit-identical
          across same-seed reruns; timing lives in the footer *)
       @ [
           ("trials_run", Json.Num (float_of_int o.o_trials_run));
           ("static_flagged", Json.Bool o.o_static_flagged);
           ("dep_pairs", Json.Num (float_of_int o.o_dep_pairs));
           ("dep_decided", Json.Num (float_of_int o.o_dep_decided));
           ("dep_sampled", Json.Num (float_of_int o.o_dep_sampled));
           ("seed", Json.Num (float_of_int o.o_seed));
         ]))

let footer_line (f : footer) =
  Json.to_string
    (Json.Obj
       [
         ("type", Json.Str "footer");
         ("total", Json.Num (float_of_int f.total));
         ("failed", Json.Num (float_of_int f.failed));
         ("proved", Json.Num (float_of_int f.proved));
         ("killed", Json.Num (float_of_int f.killed));
         ("trials_spent", Json.Num (float_of_int f.trials_spent));
         ("wall_s", Json.Num f.wall_s);
         ("instances_per_s", Json.Num f.instances_per_s);
         ("retries", Json.Num (float_of_int f.retries));
         ("quarantined", Json.Num (float_of_int f.quarantined));
         ("worker_lost", Json.Num (float_of_int f.worker_lost));
         ("degraded", Json.Bool f.degraded);
         ("recovered_records", Json.Num (float_of_int f.recovered_records));
       ])

(* ---------------- parse ---------------- *)

let parse_line line =
  let j = Json.of_string line in
  match Json.str (Json.field j "type") with
  | "header" ->
      Header
        {
          seed = Json.int (Json.field j "seed");
          trials = Json.int (Json.field j "trials");
          j = Json.int (Json.field j "j");
          deadline_s = Json.num (Json.field j "deadline_s");
          programs = List.map Json.str (Json.arr (Json.field j "programs"));
          xforms = List.map Json.str (Json.arr (Json.field j "xforms"));
        }
  | "instance" ->
      let status =
        match Json.str (Json.field j "status") with
        | "completed" -> Campaign.Completed
        | "timeout" ->
            Campaign.Timed_out
              {
                deadline_s =
                  (match Json.mem j "deadline_s" with Some d -> Json.num d | None -> 0.);
              }
        | "crash" ->
            Campaign.Crashed
              {
                detail =
                  (match Json.mem j "crash_detail" with Some d -> Json.str d | None -> "");
              }
        | s -> failwith ("journal: unknown status " ^ s)
      in
      let verdict =
        match Json.str (Json.field j "verdict") with
        | "pass" -> Campaign.O_passed
        | "proved" -> Campaign.O_proved
        | "killed" -> Campaign.O_killed
        | "fail" ->
            Campaign.O_failed
              {
                klass = class_of_name (Json.str (Json.field j "class"));
                first_trial = Json.int (Json.field j "first_trial");
                failing_trials = Json.int (Json.field j "failing_trials");
              }
        | s -> failwith ("journal: unknown verdict " ^ s)
      in
      Instance
        {
          Campaign.o_program = Json.str (Json.field j "program");
          o_xform = Json.str (Json.field j "xform");
          o_site = site_of_json (Json.field j "site");
          o_status = status;
          o_verdict = verdict;
          o_trials_run = Json.int (Json.field j "trials_run");
          o_static_flagged = Json.bool (Json.field j "static_flagged");
          (* absent in journals written before the exact dependence tier *)
          o_dep_pairs = (match Json.mem j "dep_pairs" with Some v -> Json.int v | None -> 0);
          o_dep_decided = (match Json.mem j "dep_decided" with Some v -> Json.int v | None -> 0);
          o_dep_sampled = (match Json.mem j "dep_sampled" with Some v -> Json.int v | None -> 0);
          o_elapsed_s = (match Json.mem j "elapsed_s" with Some e -> Json.num e | None -> 0.);
          o_seed = Json.int (Json.field j "seed");
        }
  | "footer" ->
      Footer
        {
          total = Json.int (Json.field j "total");
          failed = Json.int (Json.field j "failed");
          proved = Json.int (Json.field j "proved");
          killed = Json.int (Json.field j "killed");
          trials_spent = Json.int (Json.field j "trials_spent");
          wall_s = Json.num (Json.field j "wall_s");
          instances_per_s = Json.num (Json.field j "instances_per_s");
          (* absent in journals written before the distributed service *)
          retries = (match Json.mem j "retries" with Some v -> Json.int v | None -> 0);
          quarantined = (match Json.mem j "quarantined" with Some v -> Json.int v | None -> 0);
          worker_lost = (match Json.mem j "worker_lost" with Some v -> Json.int v | None -> 0);
          degraded = (match Json.mem j "degraded" with Some v -> Json.bool v | None -> false);
          recovered_records =
            (match Json.mem j "recovered_records" with Some v -> Json.int v | None -> 0);
        }
  | s -> failwith ("journal: unknown record type " ^ s)

let load ?(warn = fun (_ : string) -> ()) path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in path in
    let lines = ref [] in
    (try
       while true do
         lines := input_line ic :: !lines
       done
     with End_of_file -> ());
    close_in ic;
    (* drop unparseable lines: a campaign killed mid-write leaves a torn
       tail. Surface each drop through [warn] so a resume does not silently
       re-run (or skip) work the operator thought was journaled. *)
    List.rev !lines
    |> List.mapi (fun i l -> (i + 1, l))
    |> List.filter_map (fun (lineno, l) ->
           if String.trim l = "" then None
           else
             match parse_line l with
             | r -> Some r
             | exception _ ->
                 let preview =
                   if String.length l <= 40 then l else String.sub l 0 40 ^ "..."
                 in
                 warn
                   (Printf.sprintf "%s:%d: dropping unparseable record (torn write?): %s" path
                      lineno preview);
                 None)
  end

(* ---------------- resume with torn-tail recovery ---------------- *)

exception Corrupt of { path : string; lineno : int; detail : string }

type loaded = { records : record list; recovered_records : int }

(* A campaign killed mid-write leaves exactly one damaged record, and it is
   the file's final line: the journal is append-only and flushed record by
   record. So recovery may truncate a torn tail, but an unparseable record
   with valid records after it means the file was damaged by something other
   than a kill — resuming from it could silently skip (or re-run) work, and
   is refused with a typed error instead. *)
let load_resume ?(warn = fun (_ : string) -> ()) ?(repair = true) path =
  if not (Sys.file_exists path) then { records = []; recovered_records = 0 }
  else begin
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let contents = really_input_string ic len in
    close_in ic;
    (* split into lines, keeping each line's starting byte offset so a torn
       tail can be physically truncated *)
    let lines = ref [] in
    let start = ref 0 in
    String.iteri
      (fun i c ->
        if c = '\n' then begin
          lines := (!start, String.sub contents !start (i - !start)) :: !lines;
          start := i + 1
        end)
      contents;
    if !start < len then lines := (!start, String.sub contents !start (len - !start)) :: !lines;
    let lines =
      List.rev !lines
      |> List.mapi (fun i (off, l) -> (i + 1, off, l))
      |> List.filter (fun (_, _, l) -> String.trim l <> "")
    in
    let parsed =
      List.map
        (fun (lineno, off, l) ->
          match parse_line l with
          | r -> (lineno, off, l, Ok r)
          | exception e -> (lineno, off, l, Error (Printexc.to_string e)))
        lines
    in
    let failures = List.filter (fun (_, _, _, r) -> Result.is_error r) parsed in
    let last_lineno =
      match List.rev lines with (lineno, _, _) :: _ -> lineno | [] -> 0
    in
    match failures with
    | [] ->
        {
          records = List.filter_map (fun (_, _, _, r) -> Result.to_option r) parsed;
          recovered_records = 0;
        }
    | [ (lineno, off, l, Error detail) ] when lineno = last_lineno ->
        let preview = if String.length l <= 40 then l else String.sub l 0 40 ^ "..." in
        warn
          (Printf.sprintf "%s:%d: truncating torn tail record: %s" path lineno preview);
        ignore detail;
        if repair then (try Unix.truncate path off with Unix.Unix_error _ -> ());
        {
          records = List.filter_map (fun (_, _, _, r) -> Result.to_option r) parsed;
          recovered_records = 1;
        }
    | (lineno, _, _, Error detail) :: _ -> raise (Corrupt { path; lineno; detail })
    | _ -> assert false
  end

let completed records =
  List.filter_map
    (function
      | Instance o ->
          Some (Campaign.instance_id ~program:o.Campaign.o_program ~xform:o.o_xform o.o_site, o)
      | _ -> None)
    records

let header_of records =
  List.find_map (function Header h -> Some h | _ -> None) records
