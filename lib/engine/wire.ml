open Fuzzyflow

(* ---------------- protocol constants ---------------- *)

let protocol_version = 2
let magic = "FFWP"

(* magic(4) + version(2, BE) + payload length(4, BE) + FNV-1a64 checksum(8, BE) *)
let header_len = 18

(* A marshalled cutout graph plus a full report is well under a megabyte;
   anything near this bound is a corrupted length field, not a real frame. *)
let max_frame_len = 64 * 1024 * 1024

exception Closed
exception Timeout
exception Protocol_error of string
exception Bad_version of { ours : int; theirs : int }

(* Same FNV-1a construction as [Campaign.instance_seed] and the mpi_sim
   checksum: cheap, deterministic, and plenty to catch a proxy- or
   kill-truncated frame (Marshal itself would often accept a prefix of a
   payload whose trailing bytes were garbled). *)
let fnv1a64 s =
  let prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) prime)
    s;
  !h

(* ---------------- messages ---------------- *)

type assignment = {
  a_idx : int;
  a_program : string;
  a_graph : string;  (** [Marshal] of the program graph *)
  a_xform : string;  (** registry name; resolved worker-side *)
  a_site : Transforms.Xform.site;
  a_config : Difftest.config;  (** per-instance seed already substituted *)
  a_static_gate : bool;
  a_certify_gate : bool;
  a_deadline_s : float;
}

type submission = {
  s_workloads : string list;
  s_correct : bool;
  s_trials : int;
  s_seed : int;
  s_max_size : int;
  s_defines : (string * int) list;
  s_limit_per : int option;
  s_static_gate : bool;
  s_certify_gate : bool;
  s_batch : int;
}

type message =
  | Hello of { proto : int }
  | Hello_ack of { proto : int }
  | Ping of int
  | Pong of int
  | Assign of assignment
  | Result of {
      r_idx : int;
      r_status : Campaign.exec_status;
      r_payload : Campaign.instance_result option;
      r_cache_hits : int;
      r_cache_misses : int;
    }
  | Refused of { r_idx : int; r_detail : string }
  | Shutdown
  | Submit of submission
  | Journal_line of string
  | Table of string
  | Done of { ok : bool; detail : string }

(* ---------------- framing ---------------- *)

let encode_frame ?(proto = protocol_version) payload =
  let len = String.length payload in
  let b = Bytes.create (header_len + len) in
  Bytes.blit_string magic 0 b 0 4;
  Bytes.set_uint16_be b 4 proto;
  Bytes.set_int32_be b 6 (Int32.of_int len);
  Bytes.set_int64_be b 10 (fnv1a64 payload);
  Bytes.blit_string payload 0 b header_len len;
  Bytes.unsafe_to_string b

let encode ?proto msg = encode_frame ?proto (Marshal.to_string msg [])

(* ---------------- deadline-aware socket IO ---------------- *)

let now () = Unix.gettimeofday ()

let rec wait_io dir fd deadline =
  (match deadline with Some d when now () >= d -> raise Timeout | _ -> ());
  let tmo = match deadline with None -> -1. | Some d -> Float.max 0. (d -. now ()) in
  let r, w = match dir with `R -> ([ fd ], []) | `W -> ([], [ fd ]) in
  match Unix.select r w [] tmo with
  | [], [], [] -> raise Timeout
  | _ -> ()
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait_io dir fd deadline

let read_exactly fd n deadline =
  let b = Bytes.create n in
  let off = ref 0 in
  while !off < n do
    wait_io `R fd deadline;
    match Unix.read fd b !off (n - !off) with
    | 0 -> raise Closed
    | k -> off := !off + k
    | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> raise Closed
  done;
  Bytes.unsafe_to_string b

let write_all fd s deadline =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    wait_io `W fd deadline;
    match Unix.write fd b !off (n - !off) with
    | k -> off := !off + k
    | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> raise Closed
  done

let deadline_of timeout_s = Option.map (fun t -> now () +. t) timeout_s

let write_message ?timeout_s fd msg = write_all fd (encode msg) (deadline_of timeout_s)

let read_message ?timeout_s fd =
  let deadline = deadline_of timeout_s in
  let hdr = read_exactly fd header_len deadline in
  if String.sub hdr 0 4 <> magic then raise (Protocol_error "bad magic");
  let proto = String.get_uint16_be hdr 4 in
  if proto <> protocol_version then raise (Bad_version { ours = protocol_version; theirs = proto });
  let len = Int32.to_int (String.get_int32_be hdr 6) in
  if len < 0 || len > max_frame_len then
    raise (Protocol_error (Printf.sprintf "implausible frame length %d" len));
  let sum = String.get_int64_be hdr 10 in
  let payload = read_exactly fd len deadline in
  if not (Int64.equal (fnv1a64 payload) sum) then raise (Protocol_error "checksum mismatch");
  match (Marshal.from_string payload 0 : message) with
  | m -> m
  | exception _ -> raise (Protocol_error "undecodable payload")

(* ---------------- connection helpers ---------------- *)

let resolve host =
  match Unix.inet_addr_of_string host with
  | addr -> addr
  | exception _ -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list = [||]; _ } -> raise Not_found
      | h -> h.Unix.h_addr_list.(0)
      | exception Not_found ->
          raise (Unix.Unix_error (Unix.EHOSTUNREACH, "gethostbyname", host)))

(* Non-blocking connect bounded by [timeout_s]; the returned descriptor is
   back in blocking mode. A refused or unreachable peer raises the underlying
   [Unix.Unix_error]; a silent peer raises [Timeout]. *)
let connect ~timeout_s ~host ~port =
  let addr = resolve host in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  match
    Unix.set_nonblock fd;
    (try Unix.connect fd (Unix.ADDR_INET (addr, port)) with
    | Unix.Unix_error (Unix.EINPROGRESS, _, _) -> ());
    wait_io `W fd (Some (now () +. timeout_s));
    (match Unix.getsockopt_error fd with
    | Some err -> raise (Unix.Unix_error (err, "connect", Printf.sprintf "%s:%d" host port))
    | None -> ());
    Unix.clear_nonblock fd
  with
  | () -> fd
  | exception e ->
      (try Unix.close fd with _ -> ());
      raise e

let listen_on ?(host = Unix.inet_addr_loopback) ~port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (host, port));
  Unix.listen fd 64;
  let actual =
    match Unix.getsockname fd with Unix.ADDR_INET (_, p) -> p | _ -> port
  in
  (fd, actual)
