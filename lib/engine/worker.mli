(** Fork-based worker pool with wall-clock deadlines, and the parallel
    campaign driver built on it.

    Each work item runs in a [Unix.fork]ed child so interpreter hangs and
    crashes are isolated: a child past its deadline is SIGKILLed and recorded
    as a [Timed_out] outcome; a child that dies without reporting becomes
    [Crashed]. Results travel back through a per-child temp file (Marshal),
    so arbitrarily large cutouts never deadlock a pipe. *)

(** Why a supervised child produced no value. *)
type failure =
  | Timed_out of { deadline_s : float }
  | Crashed of { detail : string }

(** Read and delete a child's marshalled result file. [`Missing] when the
    file cannot be opened or is empty (the child died before writing),
    [`Corrupt] when Marshal rejects its contents (a torn write); the pool
    maps both to [Crashed] rather than raising. Exposed for tests. *)
val read_result : string -> [ `Result of ('a, string) result | `Missing | `Corrupt ]

(** [supervise ~deadline_s f] runs [f ()] in a forked child and waits:
    [Ok v] if the child finished in time, [Error] otherwise. The synchronous
    single-job version of the pool — also its unit-testable core. *)
val supervise : deadline_s:float -> (unit -> 'a) -> ('a, failure) result

(** [map_pool ~j ~deadline_s thunks] runs every thunk in a forked child, at
    most [j] alive at once, killing any child past [deadline_s]. Results are
    in input order. [on_done i r] fires as each thunk settles (completion
    order); [on_start i slot] fires as each is forked. The reap loop
    sleep-waits on a SIGCHLD self-pipe (bounded by the nearest child
    deadline), so an idle or blocked pool does not burn a core. *)
val map_pool :
  j:int ->
  deadline_s:float ->
  ?on_start:(int -> int -> unit) ->
  ?on_done:(int -> ('a, failure) result -> unit) ->
  (unit -> 'a) array ->
  ('a, failure) result array

(** A pluggable remote execution strategy (see [Supervisor.executor]): run
    the fresh queue items on remote workers, reporting through the same
    [on_start]/[on_done] callbacks (keyed by fresh-array index) as the local
    pool, and return the indices it could not complete — those degrade to
    the local fork pool. *)
type remote_executor = {
  dispatch :
    items:Queue.item array ->
    config:Fuzzyflow.Difftest.config ->
    static_gate:bool ->
    certify_gate:bool ->
    deadline_s:float ->
    telemetry:Telemetry.t ->
    on_start:(int -> int -> unit) ->
    on_done:(int -> (Fuzzyflow.Campaign.instance_result, failure) result -> unit) ->
    int list;
}

(** How the difftest trial loop's batch width is chosen for the campaign. *)
type batching =
  | Inherit  (** keep [config.batch] as passed (default 1: serial plan path) *)
  | Fixed of int  (** force this width (clamped to at least 1) *)
  | Auto  (** derive from the per-instance trial budget ({!auto_batch}) *)

(** The [Auto] policy: wide enough to amortize instruction dispatch over the
    instance's trial budget, capped at 64 so one sweep's buffers stay
    cache-resident. *)
val auto_batch : trials:int -> int

type options = {
  j : int;  (** worker pool size *)
  deadline_s : float;  (** per-instance wall-clock budget *)
  journal_path : string option;  (** None: no journaling (and no resume) *)
  resume : bool;  (** skip instances already in the journal *)
  corpus_dir : string option;  (** save failing cases here, deduplicated *)
  progress : bool;  (** live telemetry on stderr *)
  limit_per : int option;
  static_gate : bool;
  certify_gate : bool;
  remote : remote_executor option;
      (** run fresh instances on remote workers first; unfinished work falls
          back to the local pool with the [degraded] telemetry flag set *)
  journal_sink : (string -> unit) option;
      (** observes every journal line as it is flushed (streaming clients,
          chaos hooks); fires even when [journal_path] is [None] *)
  on_telemetry : (Telemetry.t -> unit) option;
      (** receives the live telemetry handle once, before execution starts
          (the service's HTTP endpoint reads it) *)
  batching : batching;
      (** batch-width policy for the trial loop; the resolved width travels
          inside the per-instance config to local children and remote
          workers alike, and journals stay byte-identical at every width *)
}

val default_options : options

(** Run a campaign through the engine: enumerate the queue, execute every
    instance not already journaled in forked workers, journal outcomes in
    queue order (so same-seed reruns are bit-identical and an interrupted
    journal is a clean prefix), persist failing cases to the corpus, and
    assemble the Table 2 summary from engine outcomes.

    Verdicts are identical for any [j], any remote worker topology — and the
    serial {!Fuzzyflow.Campaign.run} — because per-instance seeds derive
    from the campaign seed and instance identity only.

    @raise Journal.Corrupt on resume from a journal with mid-file (non-tail)
    corruption; a torn tail is truncated and counted in the footer instead. *)
val run_campaign :
  ?options:options ->
  ?config:Fuzzyflow.Difftest.config ->
  ?catalog:Transforms.Xform.t list ->
  (string * Sdfg.Graph.t) list ->
  Transforms.Xform.t list ->
  Fuzzyflow.Campaign.t
