(** The campaign work queue: every (program, transformation, site) instance,
    enumerated in the same deterministic order as the serial
    {!Fuzzyflow.Campaign.run} loop, each with a stable identity and a
    scheduling-order-independent fuzzing seed. *)

type item = {
  idx : int;  (** position in queue order; journal/table order key *)
  id : string;  (** {!Fuzzyflow.Campaign.instance_id} — the journal key *)
  program_name : string;
  program : Sdfg.Graph.t;
  xform : Transforms.Xform.t;
  site : Transforms.Xform.site;
  seed : int;  (** per-instance seed ({!Fuzzyflow.Campaign.instance_seed}) *)
}

(** [build ~seed programs xforms] enumerates every application site of every
    transformation on every program (transformations outermost, matching the
    serial campaign loop). [limit_per] caps sites per (program, xform) pair. *)
val build :
  ?limit_per:int option ->
  seed:int ->
  (string * Sdfg.Graph.t) list ->
  Transforms.Xform.t list ->
  item list
