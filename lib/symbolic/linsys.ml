(* Integer linear systems: Fourier-Motzkin elimination with a GCD pre-test
   (Omega-test-lite) and verified witness reconstruction. See linsys.mli for
   the soundness contract: Unsat and Sat are proofs, everything doubtful is
   Unknown. *)

type lin = { const : int; coeffs : (string * int) list }

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)
let gcd_list = List.fold_left (fun g (_, c) -> gcd g c) 0

(* floor/ceil division for a positive divisor, exact for negative numerators *)
let floor_div a b = if a >= 0 then a / b else -(((-a) + b - 1) / b)
let ceil_div a b = -(floor_div (-a) b)

let norm_coeffs cs =
  List.filter (fun (_, c) -> c <> 0) cs |> List.sort (fun (a, _) (b, _) -> compare a b)

let of_terms const terms =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (v, c) ->
      Hashtbl.replace tbl v (c + Option.value ~default:0 (Hashtbl.find_opt tbl v)))
    terms;
  { const; coeffs = norm_coeffs (Hashtbl.fold (fun v c acc -> (v, c) :: acc) tbl []) }

let const n = { const = n; coeffs = [] }
let var ?(coeff = 1) v = { const = 0; coeffs = (if coeff = 0 then [] else [ (v, coeff) ]) }

let add a b =
  of_terms (a.const + b.const) (a.coeffs @ b.coeffs)

let scale k l =
  if k = 0 then const 0
  else { const = k * l.const; coeffs = norm_coeffs (List.map (fun (v, c) -> (v, k * c)) l.coeffs) }

let sub a b = add a (scale (-1) b)

let eval_lin env l =
  List.fold_left (fun acc (v, c) -> acc + (c * List.assoc v env)) l.const l.coeffs

type cstr = Ge0 of lin | Eq0 of lin

let ge a b = Ge0 (sub a b)
let le a b = Ge0 (sub b a)
let eq a b = Eq0 (sub a b)

let pp_lin ppf l =
  let open Format in
  if l.coeffs = [] then fprintf ppf "%d" l.const
  else begin
    List.iteri
      (fun i (v, c) ->
        if i > 0 && c > 0 then fprintf ppf " + ";
        if c = 1 then fprintf ppf "%s" v
        else if c = -1 then fprintf ppf "-%s" v
        else if c < 0 then fprintf ppf "%d*%s" c v
        else fprintf ppf "%d*%s" c v)
      l.coeffs;
    if l.const > 0 then fprintf ppf " + %d" l.const
    else if l.const < 0 then fprintf ppf " - %d" (-l.const)
  end

let pp_cstr ppf = function
  | Ge0 l -> Format.fprintf ppf "%a >= 0" pp_lin l
  | Eq0 l -> Format.fprintf ppf "%a = 0" pp_lin l

let cstr_to_string c = Format.asprintf "%a" pp_cstr c

let eval_total env l =
  List.fold_left
    (fun acc (v, c) -> acc + (c * Option.value ~default:0 (List.assoc_opt v env)))
    l.const l.coeffs

let holds env = function Ge0 l -> eval_total env l >= 0 | Eq0 l -> eval_total env l = 0

type verdict = Unsat | Sat of (string * int) list | Unknown

(* Variables of a system, sorted for deterministic elimination order. *)
let vars_of cs =
  List.concat_map (fun c -> List.map fst (match c with Ge0 l | Eq0 l -> l.coeffs)) cs
  |> List.sort_uniq compare

(* Tighten [l >= 0] by the coefficient GCD: sum(a_i x_i) + c >= 0 with
   g = gcd(a_i) is equivalent (over integers) to sum(a_i/g x_i) >= ceil(-c/g),
   i.e. constant floor(c/g). Returns [None] when the constraint is variable
   free and violated. *)
let tighten_ge l =
  if l.coeffs = [] then if l.const >= 0 then Some None else None
  else
    let g = gcd_list l.coeffs in
    let l' =
      if g <= 1 then l
      else
        { const = floor_div l.const g;
          coeffs = List.map (fun (v, c) -> (v, c / g)) l.coeffs }
    in
    Some (Some l')

exception Infeasible

(* Substitute [v := rhs] (a lin over other variables) in [l]. *)
let subst_lin v rhs l =
  match List.assoc_opt v l.coeffs with
  | None -> l
  | Some c ->
      let rest = List.remove_assoc v l.coeffs in
      add { const = l.const; coeffs = rest } (scale c rhs)

let solve ?(max_cstrs = 4096) cstrs =
  let originals = cstrs in
  try
    (* Phase 1: equality propagation. Unit-coefficient pivots are eliminated
       by substitution; non-unit equalities get the GCD divisibility test and
       are then relaxed to a pair of inequalities (sound: rational relaxation;
       integrality is re-imposed by the final verification). *)
    let substs = ref [] in
    let rec eq_phase eqs ges =
      match eqs with
      | [] -> ges
      | Eq0 l :: rest -> (
          let l = { l with coeffs = norm_coeffs l.coeffs } in
          if l.coeffs = [] then
            if l.const = 0 then eq_phase rest ges else raise Infeasible
          else
            let g = gcd_list l.coeffs in
            if g > 1 && l.const mod g <> 0 then raise Infeasible (* GCD pre-test *)
            else
              let l =
                if g <= 1 then l
                else
                  { const = l.const / g;
                    coeffs = List.map (fun (v, c) -> (v, c / g)) l.coeffs }
              in
              match List.find_opt (fun (_, c) -> abs c = 1) l.coeffs with
              | Some (v, c) ->
                  (* c*v + rest = 0  =>  v = -c * rest  (c = +-1) *)
                  let rest_lin = { l with coeffs = List.remove_assoc v l.coeffs } in
                  let rhs = scale (-c) rest_lin in
                  substs := (v, rhs) :: !substs;
                  let sub_c = function
                    | Eq0 m -> Eq0 (subst_lin v rhs m)
                    | Ge0 m -> Ge0 (subst_lin v rhs m)
                  in
                  eq_phase (List.map sub_c rest) (List.map sub_c ges)
              | None -> eq_phase rest (Ge0 l :: Ge0 (scale (-1) l) :: ges))
      | (Ge0 _ as c) :: rest -> eq_phase rest (c :: ges)
    in
    let eqs, ges = List.partition (function Eq0 _ -> true | Ge0 _ -> false) cstrs in
    let ges = eq_phase eqs ges in
    (* Phase 2: normalize inequalities. *)
    let norm ges =
      List.filter_map
        (fun c ->
          match c with
          | Eq0 _ -> assert false
          | Ge0 l -> (
              match tighten_ge { l with coeffs = norm_coeffs l.coeffs } with
              | None -> raise Infeasible
              | Some keep -> keep))
        ges
    in
    let ges = ref (norm ges) in
    (* Phase 3: Fourier-Motzkin elimination, recording per-variable bound sets
       for witness reconstruction. *)
    let eliminated = ref [] in
    let remaining = ref (vars_of (List.map (fun l -> Ge0 l) !ges)) in
    while !remaining <> [] do
      (* pick the variable minimizing the product |lowers|*|uppers| *)
      let cost v =
        let lo, hi =
          List.fold_left
            (fun (lo, hi) l ->
              match List.assoc_opt v l.coeffs with
              | Some c when c > 0 -> (lo + 1, hi)
              | Some _ -> (lo, hi + 1)
              | None -> (lo, hi))
            (0, 0) !ges
        in
        lo * hi
      in
      let v =
        List.fold_left
          (fun best v -> match best with
            | Some (bv, bc) ->
                let c = cost v in
                if c < bc then Some (v, c) else Some (bv, bc)
            | None -> Some (v, cost v))
          None !remaining
        |> Option.get |> fst
      in
      remaining := List.filter (fun x -> x <> v) !remaining;
      let with_v, without = List.partition (fun l -> List.mem_assoc v l.coeffs) !ges in
      let lowers, uppers =
        List.partition (fun l -> List.assoc v l.coeffs > 0) with_v
      in
      (* a*v + p >= 0 (a>0, lower: v >= ceil(-p/a));  -b*v + n >= 0 (b>0,
         upper: v <= floor(n/b)). Combination eliminating v: b*p + a*n >= 0. *)
      let combined =
        List.concat_map
          (fun lo ->
            let a = List.assoc v lo.coeffs in
            let p = { lo with coeffs = List.remove_assoc v lo.coeffs } in
            List.filter_map
              (fun up ->
                let b = -List.assoc v up.coeffs in
                let n = { up with coeffs = List.remove_assoc v up.coeffs } in
                match tighten_ge (add (scale b p) (scale a n)) with
                | None -> raise Infeasible
                | Some keep -> keep)
              uppers)
          lowers
      in
      eliminated := (v, lowers, uppers) :: !eliminated;
      ges := combined @ without;
      if List.length !ges > max_cstrs then raise Exit
    done;
    (* Phase 4: variable-free residue already checked feasible by tighten_ge.
       Reconstruct an integer witness in reverse elimination order. *)
    let valuation = ref [] in
    let ev l = eval_total !valuation l in
    List.iter
      (fun (v, lowers, uppers) ->
        let lo =
          List.fold_left
            (fun acc l ->
              let a = List.assoc v l.coeffs in
              let p = { l with coeffs = List.remove_assoc v l.coeffs } in
              let b = ceil_div (-ev p) a in
              match acc with None -> Some b | Some x -> Some (max x b))
            None lowers
        in
        let hi =
          List.fold_left
            (fun acc l ->
              let b = -List.assoc v l.coeffs in
              let n = { l with coeffs = List.remove_assoc v l.coeffs } in
              let u = floor_div (ev n) b in
              match acc with None -> Some u | Some x -> Some (min x u))
            None uppers
        in
        let value =
          match (lo, hi) with
          | Some l, Some h -> if l > h then raise Exit (* integer gap *) else l
          | Some l, None -> l
          | None, Some h -> h
          | None, None -> 0
        in
        valuation := (v, value) :: !valuation)
      !eliminated;
    (* substituted variables, most recent first = reverse dependency order *)
    List.iter
      (fun (v, rhs) -> valuation := (v, eval_total !valuation rhs) :: !valuation)
      !substs;
    let model =
      (* bind every variable of the original system; unconstrained ones get 0 *)
      List.map
        (fun v -> (v, Option.value ~default:0 (List.assoc_opt v !valuation)))
        (vars_of originals)
    in
    (* Phase 5: verification — Sat must be a real model of the originals. *)
    if List.for_all (holds model) originals then Sat model else Unknown
  with
  | Infeasible -> Unsat
  | Exit -> Unknown

(* ------------------------------------------------------------------ *)
(* Lowering Expr.t terms to guarded linear alternatives.              *)

type alt = { guards : cstr list; term : lin }

let gensym () =
  let n = ref (-1) in
  fun () ->
    incr n;
    Printf.sprintf "$a%d" !n

let is_aux v = String.length v > 0 && v.[0] = '$'

let max_alts = 64

let of_expr ~fresh e =
  let exception Bail in
  let cross f xs ys =
    let r = List.concat_map (fun x -> List.map (fun y -> f x y) ys) xs in
    if List.length r > max_alts then raise Bail else r
  in
  let rec go e =
    match (e : Expr.t) with
    | Int n -> [ { guards = []; term = const n } ]
    | Sym s -> [ { guards = []; term = var s } ]
    | Neg a -> List.map (fun x -> { x with term = scale (-1) x.term }) (go a)
    | Add (a, b) ->
        cross (fun x y -> { guards = x.guards @ y.guards; term = add x.term y.term })
          (go a) (go b)
    | Sub (a, b) ->
        cross (fun x y -> { guards = x.guards @ y.guards; term = sub x.term y.term })
          (go a) (go b)
    | Mul (a, b) ->
        cross
          (fun x y ->
            if x.term.coeffs = [] then
              { guards = x.guards @ y.guards; term = scale x.term.const y.term }
            else if y.term.coeffs = [] then
              { guards = x.guards @ y.guards; term = scale y.term.const x.term }
            else raise Bail)
          (go a) (go b)
    | Min (a, b) ->
        cross_minmax ~is_min:true (go a) (go b)
    | Max (a, b) ->
        cross_minmax ~is_min:false (go a) (go b)
    | Div (a, b) -> divmod ~want_quot:true a b
    | Mod (a, b) -> divmod ~want_quot:false a b
  and cross_minmax ~is_min xs ys =
    let r =
      List.concat_map
        (fun x ->
          List.concat_map
            (fun y ->
              let d = sub y.term x.term in
              (* d >= 0 means x <= y *)
              let pick_x, pick_y =
                if is_min then (Ge0 d, Ge0 (scale (-1) d))
                else (Ge0 (scale (-1) d), Ge0 d)
              in
              [ { guards = (pick_x :: x.guards) @ y.guards; term = x.term };
                { guards = (pick_y :: x.guards) @ y.guards; term = y.term } ])
            ys)
        xs
    in
    if List.length r > max_alts then raise Bail else r
  and divmod ~want_quot a b =
    (* floor division / euclidean remainder by a positive constant c:
       a = c*q + r with 0 <= r <= c-1 characterizes q = a div c, r = a mod c *)
    match Expr.is_constant (Expr.simplify b) with
    | Some c when c > 0 ->
        let q = fresh () and r = fresh () in
        List.map
          (fun x ->
            let qv = var q and rv = var r in
            let defining =
              [ Eq0 (sub x.term (add (scale c qv) rv)); Ge0 rv; Ge0 (sub (const (c - 1)) rv) ]
            in
            { guards = defining @ x.guards; term = (if want_quot then qv else rv) })
          (go a)
    | _ -> raise Bail
  in
  match go e with alts -> Some alts | exception Bail -> None
