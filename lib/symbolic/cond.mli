(** Symbolic boolean conditions over {!Expr} terms.

    Used on interstate edges (loop guards, branches) and for the gray-box
    constraint analysis of Sec. 5.1. *)

type t =
  | True
  | False
  | Lt of Expr.t * Expr.t
  | Le of Expr.t * Expr.t
  | Gt of Expr.t * Expr.t
  | Ge of Expr.t * Expr.t
  | Eq of Expr.t * Expr.t
  | Ne of Expr.t * Expr.t
  | And of t * t
  | Or of t * t
  | Not of t

val eval : int Expr.Env.t -> t -> bool
val free_syms : t -> string list
val subst : Expr.t Expr.Env.t -> t -> t
val rename_sym : from:string -> into:string -> t -> t
val negate : t -> t

(** [any_ne [(a, a'); (b, b')]] is the condition [a ≠ a' ∨ b ≠ b'] — two
    valuations of the listed terms are distinct. Used by the static race
    analysis to constrain primed map-parameter copies. *)
val any_ne : (Expr.t * Expr.t) list -> t
val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** Parse conditions of the grammar
    [c ::= e < e | e <= e | e > e | e >= e | e == e | e != e
         | c and c | c or c | not c | true | false | (c)].
    @raise Expr.Parse_error on malformed input. *)
val of_string : string -> t
