(** Parametric index ranges and multi-dimensional subsets.

    Memlets annotate each data-movement edge with the exact subset of the data
    container being accessed (Sec. 2.3). Ranges use DaCe's inclusive
    [lo : hi : step] convention. *)

(** One dimension of a subset. [hi] is inclusive. A negative [step] iterates
    downwards (used by the negative-step loop-unrolling case of Sec. 6.4). *)
type range = { lo : Expr.t; hi : Expr.t; step : Expr.t }

(** A multi-dimensional subset: one range per dimension. The empty list denotes
    the subset of a scalar container. *)
type t = range list

(** A fully concretized range. *)
type crange = { clo : int; chi : int; cstep : int }

val dim : ?step:Expr.t -> Expr.t -> Expr.t -> range
(** [dim lo hi] is the inclusive range [lo : hi] with step 1 by default. *)

val index : Expr.t -> range
(** [index i] is the single-element range [i : i]. *)

val full : Expr.t list -> t
(** [full shape] covers an entire container of the given shape: one
    [0 : d-1] range per dimension. *)

val scalar : t
(** The subset of a scalar container (no dimensions). *)

val num_dims : t -> int

(** Number of elements along one concretized range; 0 if empty. *)
val crange_count : crange -> int

val concretize_range : int Expr.Env.t -> range -> crange
val concretize : int Expr.Env.t -> t -> crange list

(** Symbolic number of elements covered ([1] for scalars). *)
val volume : t -> Expr.t

(** Concrete number of elements covered under an environment. *)
val volume_eval : int Expr.Env.t -> t -> int

(** Elements of a concretized range, in iteration order. *)
val crange_elements : crange -> int list

(** Conservative overlap test of two concrete subsets: bounding boxes must
    intersect in every dimension. May report overlap for stride-disjoint
    subsets — safe (over-approximate) for side-effect analysis. *)
val overlaps : crange list -> crange list -> bool

(** [covers a b] holds when the bounding box of [a] contains that of [b] in
    every dimension and [a] is stride-1. *)
val covers : crange list -> crange list -> bool

val free_syms : t -> string list
val subst : Expr.t Expr.Env.t -> t -> t
val rename_sym : from:string -> into:string -> t -> t

(** Simultaneous renaming: [rename_syms [(a, a'); (b, b')] s] renames [a] to
    [a'] and [b] to [b'] in one pass (used to prime map parameters for the
    static race analysis without capture). *)
val rename_syms : (string * string) list -> t -> t

(** Symbolic disjointness proof: [true] when some dimension of [a] provably
    ends before [b] starts (or vice versa) — the difference of the symbolic
    bounds simplifies to a negative constant. A [false] answer proves
    nothing (the subsets may still be disjoint). *)
val definitely_disjoint : t -> t -> bool

(** {1 Subset algebra for translation validation} *)

(** Canonical form under symbol bounds: every component expression is
    {!Expr.simplify_under}-reduced, single-point ranges get step 1, and fully
    constant decreasing ranges are mirrored to their increasing equivalent
    (iteration order is not part of a subset's meaning). *)
val normalize : ?bounds:(string -> int option * int option) -> t -> t

(** Symbolic subset equality after normalization: same dimensionality and
    per-dimension {!Expr.equal_under} bounds and step. A [false] answer
    proves nothing. *)
val equal : ?bounds:(string -> int option * int option) -> t -> t -> bool

(** Per-dimension bounding-box union. Exact when one side covers the other;
    otherwise conservative (mismatched strides collapse to 1). The empty
    (scalar) subset is the unit.
    @raise Invalid_argument on a dimensionality mismatch. *)
val union : ?bounds:(string -> int option * int option) -> t -> t -> t

(** [difference_witness ~symbols a b] searches a small grid of concrete symbol
    valuations (endpoints and midpoint of each symbol's candidate interval)
    for one under which [a] and [b] cover different element sets. Returns the
    valuation and one element of the symmetric difference. Valuations where
    either subset fails to concretize or exceeds [cap] elements are skipped,
    so [None] proves nothing. *)
val difference_witness :
  ?cap:int ->
  symbols:(string * (int * int)) list ->
  t ->
  t ->
  ((string * int) list * int list) option
val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** Parse subsets like ["0:N-1, i, 2:M-1:2"]; a lone expression is an index.
    @raise Expr.Parse_error on malformed input. *)
val of_string : string -> t
