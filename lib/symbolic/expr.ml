type t =
  | Int of int
  | Sym of string
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t
  | Mod of t * t
  | Min of t * t
  | Max of t * t
  | Neg of t

exception Unbound_symbol of string
exception Division_by_zero
exception Parse_error of string

module Env = struct
  include Map.Make (String)

  let of_list l = List.fold_left (fun acc (k, v) -> add k v acc) empty l
end

let int n = Int n
let sym s = Sym s
let zero = Int 0
let one = Int 1
let add a b = Add (a, b)
let sub a b = Sub (a, b)
let mul a b = Mul (a, b)
let div a b = Div (a, b)
let modulo a b = Mod (a, b)
let min_ a b = Min (a, b)
let max_ a b = Max (a, b)
let neg a = Neg a

(* Floor division: rounds towards negative infinity, so that ranges with
   negative bounds keep their expected tile/chunk semantics. *)
let fdiv a b =
  if b = 0 then raise Division_by_zero
  else
    let q = a / b and r = a mod b in
    if r <> 0 && (r < 0) <> (b < 0) then q - 1 else q

let fmod a b =
  if b = 0 then raise Division_by_zero
  else
    let r = a mod b in
    if r <> 0 && (r < 0) <> (b < 0) then r + b else r

let rec eval env e =
  match e with
  | Int n -> n
  | Sym s -> ( match Env.find_opt s env with Some v -> v | None -> raise (Unbound_symbol s))
  | Add (a, b) -> eval env a + eval env b
  | Sub (a, b) -> eval env a - eval env b
  | Mul (a, b) -> eval env a * eval env b
  | Div (a, b) -> fdiv (eval env a) (eval env b)
  | Mod (a, b) -> fmod (eval env a) (eval env b)
  | Min (a, b) -> Stdlib.min (eval env a) (eval env b)
  | Max (a, b) -> Stdlib.max (eval env a) (eval env b)
  | Neg a -> -eval env a

module Sset = Set.Make (String)

let free_syms e =
  let rec go acc = function
    | Int _ -> acc
    | Sym s -> Sset.add s acc
    | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) | Mod (a, b) | Min (a, b) | Max (a, b) ->
        go (go acc a) b
    | Neg a -> go acc a
  in
  Sset.elements (go Sset.empty e)

let rec subst map e =
  match e with
  | Int _ -> e
  | Sym s -> ( match Env.find_opt s map with Some e' -> e' | None -> e)
  | Add (a, b) -> Add (subst map a, subst map b)
  | Sub (a, b) -> Sub (subst map a, subst map b)
  | Mul (a, b) -> Mul (subst map a, subst map b)
  | Div (a, b) -> Div (subst map a, subst map b)
  | Mod (a, b) -> Mod (subst map a, subst map b)
  | Min (a, b) -> Min (subst map a, subst map b)
  | Max (a, b) -> Max (subst map a, subst map b)
  | Neg a -> Neg (subst map a)

let rename_sym ~from ~into e = subst (Env.singleton from (Sym into)) e

let rec simplify e =
  match e with
  | Int _ | Sym _ -> e
  | Add (a, b) -> (
      match (simplify a, simplify b) with
      | Int x, Int y -> Int (x + y)
      | Int 0, b' -> b'
      | a', Int 0 -> a'
      | a', b' -> Add (a', b'))
  | Sub (a, b) -> (
      match (simplify a, simplify b) with
      | Int x, Int y -> Int (x - y)
      | a', Int 0 -> a'
      | a', b' when a' = b' -> Int 0
      | a', b' -> Sub (a', b'))
  | Mul (a, b) -> (
      match (simplify a, simplify b) with
      | Int x, Int y -> Int (x * y)
      | Int 0, _ | _, Int 0 -> Int 0
      | Int 1, b' -> b'
      | a', Int 1 -> a'
      | a', b' -> Mul (a', b'))
  | Div (a, b) -> (
      match (simplify a, simplify b) with
      | Int x, Int y when y <> 0 -> Int (fdiv x y)
      | a', Int 1 -> a'
      | Int 0, b' -> Div (Int 0, b')
      | a', b' -> Div (a', b'))
  | Mod (a, b) -> (
      match (simplify a, simplify b) with
      | Int x, Int y when y <> 0 -> Int (fmod x y)
      | _, Int 1 -> Int 0
      | a', b' -> Mod (a', b'))
  | Min (a, b) -> (
      match (simplify a, simplify b) with
      | Int x, Int y -> Int (Stdlib.min x y)
      | a', b' when a' = b' -> a'
      | a', b' -> Min (a', b'))
  | Max (a, b) -> (
      match (simplify a, simplify b) with
      | Int x, Int y -> Int (Stdlib.max x y)
      | a', b' when a' = b' -> a'
      | a', b' -> Max (a', b'))
  | Neg a -> ( match simplify a with Int x -> Int (-x) | Neg a' -> a' | a' -> Neg a')

let equal a b = simplify a = simplify b
let is_constant e = match simplify e with Int n -> Some n | _ -> None

(* ---- interval reasoning under symbol bounds ---------------------------- *)

let unbounded : string -> int option * int option = fun _ -> (None, None)

(* Option endpoints: [None] is -oo for lows and +oo for highs. *)
let opt_add a b = match (a, b) with Some x, Some y -> Some (x + y) | _ -> None
let opt_neg = Option.map (fun x -> -x)

let opt_min_lo a b =
  (* lower endpoint of a set union-like min: -oo absorbs *)
  match (a, b) with Some x, Some y -> Some (Stdlib.min x y) | _ -> None

let opt_max_hi a b = match (a, b) with Some x, Some y -> Some (Stdlib.max x y) | _ -> None

let rec interval bnds e =
  match e with
  | Int n -> (Some n, Some n)
  | Sym s -> bnds s
  | Add (a, b) ->
      let la, ha = interval bnds a and lb, hb = interval bnds b in
      (opt_add la lb, opt_add ha hb)
  | Sub (a, b) ->
      let la, ha = interval bnds a and lb, hb = interval bnds b in
      (opt_add la (opt_neg hb), opt_add ha (opt_neg lb))
  | Neg a ->
      let la, ha = interval bnds a in
      (opt_neg ha, opt_neg la)
  | Mul (a, b) -> (
      let mul_const k (l, h) =
        if k = 0 then (Some 0, Some 0)
        else
          let l' = Option.map (fun x -> k * x) l and h' = Option.map (fun x -> k * x) h in
          if k > 0 then (l', h') else (h', l')
      in
      match (interval bnds a, interval bnds b) with
      | (Some ka, Some ka'), ib when ka = ka' -> mul_const ka ib
      | ia, (Some kb, Some kb') when kb = kb' -> mul_const kb ia
      | (Some la, Some ha), (Some lb, Some hb) ->
          let ps = [ la * lb; la * hb; ha * lb; ha * hb ] in
          (Some (List.fold_left Stdlib.min (List.hd ps) ps),
           Some (List.fold_left Stdlib.max (List.hd ps) ps))
      | _ -> (None, None))
  | Div (a, Int k) when k > 0 ->
      let la, ha = interval bnds a in
      (Option.map (fun x -> fdiv x k) la, Option.map (fun x -> fdiv x k) ha)
  | Div _ -> (None, None)
  | Mod (_, Int k) when k > 0 -> (Some 0, Some (k - 1))
  | Mod _ -> (None, None)
  | Min (a, b) ->
      let la, ha = interval bnds a and lb, hb = interval bnds b in
      let h = match (ha, hb) with Some x, Some y -> Some (Stdlib.min x y) | Some x, None | None, Some x -> Some x | _ -> None in
      (opt_min_lo la lb, h)
  | Max (a, b) ->
      let la, ha = interval bnds a and lb, hb = interval bnds b in
      let l = match (la, lb) with Some x, Some y -> Some (Stdlib.max x y) | Some x, None | None, Some x -> Some x | _ -> None in
      (l, opt_max_hi ha hb)

(* Provably [a <= b] under the bounds. Interval arithmetic alone is
   correlation-blind (it cannot see min(2, N-1) <= N-1), so min/max operands
   are also compared structurally: min(x, y) <= b whenever x <= b or y <= b,
   and dually for max. *)
(* Linear normal form: constant plus integer combination of atoms, where an
   atom is any subterm the +/-/const-multiple fragment cannot decompose
   (symbols, min/max, divisions...). Syntactically equal atoms cancel, which
   the per-node interval evaluation cannot do: (N-1+31) - (N-1) has the
   unbounded interval (-oo,oo) but the exact linear difference 31. *)
module Atom_map = Map.Make (struct
  type nonrec t = t

  let compare = Stdlib.compare
end)

let linear_form e =
  let add_atom a k m = Atom_map.update a (fun v -> Some (Option.value v ~default:0 + k)) m in
  let rec go k e ((c, m) as acc) =
    match e with
    | Int n -> (c + (k * n), m)
    | Add (a, b) -> go k b (go k a acc)
    | Sub (a, b) -> go (-k) b (go k a acc)
    | Neg a -> go (-k) a acc
    | Mul (Int n, a) | Mul (a, Int n) -> go (k * n) a acc
    | Sym _ | Mul _ | Div _ | Mod _ | Min _ | Max _ -> (c, add_atom e k m)
  in
  go 1 e (0, Atom_map.empty)

(* Upper bound of [a - b]: cancel shared linear structure first, then bound
   each surviving atom by its interval. *)
let diff_upper bnds a b =
  let c, atoms = linear_form (simplify (Sub (a, b))) in
  Atom_map.fold
    (fun atom k acc ->
      match acc with
      | None -> None
      | Some s ->
          if k = 0 then Some s
          else
            let lo, hi = interval bnds atom in
            let endpoint = if k > 0 then hi else lo in
            Option.map (fun v -> s + (k * v)) endpoint)
    atoms (Some c)

let rec leq bnds a b =
  (match diff_upper bnds a b with Some h when h <= 0 -> true | _ -> false)
  || (match a with
     | Min (x, y) -> leq bnds x b || leq bnds y b
     | Max (x, y) -> leq bnds x b && leq bnds y b
     | _ -> false)
  || (match b with
     | Max (x, y) -> leq bnds a x || leq bnds a y
     | Min (x, y) -> leq bnds a x && leq bnds a y
     | _ -> false)

(* Sign of [a - b] under the bounds: definitely non-positive, definitely
   non-negative, or unknown. *)
let compare_under bnds a b =
  if leq bnds a b then `Le else if leq bnds b a then `Ge else `Unknown

let rec simplify_under bnds e =
  let s = simplify_under bnds in
  match e with
  | Int _ | Sym _ -> e
  | Add (a, b) -> simplify (Add (s a, s b))
  | Sub (a, b) -> simplify (Sub (s a, s b))
  | Mul (a, b) -> simplify (Mul (s a, s b))
  | Div (a, b) -> simplify (Div (s a, s b))
  | Mod (a, b) -> simplify (Mod (s a, s b))
  | Neg a -> simplify (Neg (s a))
  | Min (a, b) -> (
      let a' = s a and b' = s b in
      if a' = b' then a'
      else
        match compare_under bnds a' b' with
        | `Le -> a'
        | `Ge -> b'
        | `Unknown -> simplify (Min (a', b')))
  | Max (a, b) -> (
      let a' = s a and b' = s b in
      if a' = b' then a'
      else
        match compare_under bnds a' b' with
        | `Le -> b'
        | `Ge -> a'
        | `Unknown -> simplify (Max (a', b')))

let equal_under bnds a b =
  simplify_under bnds a = simplify_under bnds b
  || (match interval bnds (Sub (a, b)) with Some 0, Some 0 -> true | _ -> false)

let rec pp_prec prec fmt e =
  let paren p body =
    if prec > p then Format.fprintf fmt "(%t)" body else body fmt
  in
  match e with
  | Int n -> if n < 0 then paren 10 (fun fmt -> Format.fprintf fmt "%d" n) else Format.fprintf fmt "%d" n
  | Sym s -> Format.pp_print_string fmt s
  | Add (a, b) -> paren 1 (fun fmt -> Format.fprintf fmt "%a + %a" (pp_prec 1) a (pp_prec 2) b)
  | Sub (a, b) -> paren 1 (fun fmt -> Format.fprintf fmt "%a - %a" (pp_prec 1) a (pp_prec 2) b)
  | Mul (a, b) -> paren 2 (fun fmt -> Format.fprintf fmt "%a * %a" (pp_prec 2) a (pp_prec 3) b)
  | Div (a, b) -> paren 2 (fun fmt -> Format.fprintf fmt "%a / %a" (pp_prec 2) a (pp_prec 3) b)
  | Mod (a, b) -> paren 2 (fun fmt -> Format.fprintf fmt "%a %% %a" (pp_prec 2) a (pp_prec 3) b)
  | Min (a, b) -> Format.fprintf fmt "min(%a, %a)" (pp_prec 0) a (pp_prec 0) b
  | Max (a, b) -> Format.fprintf fmt "max(%a, %a)" (pp_prec 0) a (pp_prec 0) b
  | Neg a -> paren 3 (fun fmt -> Format.fprintf fmt "-%a" (pp_prec 3) a)

let pp fmt e = pp_prec 0 fmt e
let to_string e = Format.asprintf "%a" pp e

(* Recursive-descent parser for the documented grammar. *)
module Parser = struct
  type token = TInt of int | TIdent of string | TPlus | TMinus | TStar | TSlash | TPercent | TLpar | TRpar | TComma | TEof

  let tokenize s =
    let n = String.length s in
    let toks = ref [] in
    let i = ref 0 in
    let is_digit c = c >= '0' && c <= '9' in
    let is_ident c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || is_digit c || c = '_' in
    while !i < n do
      let c = s.[!i] in
      if c = ' ' || c = '\t' || c = '\n' then incr i
      else if is_digit c then begin
        let j = ref !i in
        while !j < n && is_digit s.[!j] do incr j done;
        toks := TInt (int_of_string (String.sub s !i (!j - !i))) :: !toks;
        i := !j
      end
      else if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' then begin
        let j = ref !i in
        while !j < n && is_ident s.[!j] do incr j done;
        toks := TIdent (String.sub s !i (!j - !i)) :: !toks;
        i := !j
      end
      else begin
        (match c with
        | '+' -> toks := TPlus :: !toks
        | '-' -> toks := TMinus :: !toks
        | '*' -> toks := TStar :: !toks
        | '/' -> toks := TSlash :: !toks
        | '%' -> toks := TPercent :: !toks
        | '(' -> toks := TLpar :: !toks
        | ')' -> toks := TRpar :: !toks
        | ',' -> toks := TComma :: !toks
        | _ -> raise (Parse_error (Printf.sprintf "unexpected character %c in %S" c s)));
        incr i
      end
    done;
    List.rev (TEof :: !toks)

  type state = { mutable toks : token list }

  let peek st = match st.toks with [] -> TEof | t :: _ -> t

  let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

  let expect st tok what =
    if peek st = tok then advance st else raise (Parse_error ("expected " ^ what))

  let rec parse_expr st =
    let lhs = ref (parse_term st) in
    let continue = ref true in
    while !continue do
      match peek st with
      | TPlus -> advance st; lhs := Add (!lhs, parse_term st)
      | TMinus -> advance st; lhs := Sub (!lhs, parse_term st)
      | _ -> continue := false
    done;
    !lhs

  and parse_term st =
    let lhs = ref (parse_factor st) in
    let continue = ref true in
    while !continue do
      match peek st with
      | TStar -> advance st; lhs := Mul (!lhs, parse_factor st)
      | TSlash -> advance st; lhs := Div (!lhs, parse_factor st)
      | TPercent -> advance st; lhs := Mod (!lhs, parse_factor st)
      | _ -> continue := false
    done;
    !lhs

  and parse_factor st =
    match peek st with
    | TInt n -> advance st; Int n
    | TMinus -> advance st; Neg (parse_factor st)
    | TLpar ->
        advance st;
        let e = parse_expr st in
        expect st TRpar ")";
        e
    | TIdent ("min" | "max" as f) when (match st.toks with _ :: TLpar :: _ -> true | _ -> false) ->
        advance st;
        expect st TLpar "(";
        let a = parse_expr st in
        expect st TComma ",";
        let b = parse_expr st in
        expect st TRpar ")";
        if f = "min" then Min (a, b) else Max (a, b)
    | TIdent s -> advance st; Sym s
    | _ -> raise (Parse_error "unexpected token")

  let run s =
    let st = { toks = tokenize s } in
    let e = parse_expr st in
    (match peek st with TEof -> () | _ -> raise (Parse_error ("trailing input in " ^ s)));
    e
end

let of_string = Parser.run
