type t =
  | True
  | False
  | Lt of Expr.t * Expr.t
  | Le of Expr.t * Expr.t
  | Gt of Expr.t * Expr.t
  | Ge of Expr.t * Expr.t
  | Eq of Expr.t * Expr.t
  | Ne of Expr.t * Expr.t
  | And of t * t
  | Or of t * t
  | Not of t

let rec eval env c =
  let e = Expr.eval env in
  match c with
  | True -> true
  | False -> false
  | Lt (a, b) -> e a < e b
  | Le (a, b) -> e a <= e b
  | Gt (a, b) -> e a > e b
  | Ge (a, b) -> e a >= e b
  | Eq (a, b) -> e a = e b
  | Ne (a, b) -> e a <> e b
  | And (a, b) -> eval env a && eval env b
  | Or (a, b) -> eval env a || eval env b
  | Not a -> not (eval env a)

module Sset = Set.Make (String)

let free_syms c =
  let rec go acc = function
    | True | False -> acc
    | Lt (a, b) | Le (a, b) | Gt (a, b) | Ge (a, b) | Eq (a, b) | Ne (a, b) ->
        List.fold_left (fun s x -> Sset.add x s) acc (Expr.free_syms a @ Expr.free_syms b)
    | And (a, b) | Or (a, b) -> go (go acc a) b
    | Not a -> go acc a
  in
  Sset.elements (go Sset.empty c)

let rec subst map c =
  let s = Expr.subst map in
  match c with
  | True -> True
  | False -> False
  | Lt (a, b) -> Lt (s a, s b)
  | Le (a, b) -> Le (s a, s b)
  | Gt (a, b) -> Gt (s a, s b)
  | Ge (a, b) -> Ge (s a, s b)
  | Eq (a, b) -> Eq (s a, s b)
  | Ne (a, b) -> Ne (s a, s b)
  | And (a, b) -> And (subst map a, subst map b)
  | Or (a, b) -> Or (subst map a, subst map b)
  | Not a -> Not (subst map a)

let rename_sym ~from ~into c = subst (Expr.Env.singleton from (Expr.Sym into)) c

let any_ne pairs =
  List.fold_left (fun acc (a, b) -> Or (acc, Ne (a, b))) False pairs

let negate = function
  | True -> False
  | False -> True
  | Lt (a, b) -> Ge (a, b)
  | Le (a, b) -> Gt (a, b)
  | Gt (a, b) -> Le (a, b)
  | Ge (a, b) -> Lt (a, b)
  | Eq (a, b) -> Ne (a, b)
  | Ne (a, b) -> Eq (a, b)
  | c -> Not c

let rec pp fmt c =
  let e = Expr.pp in
  match c with
  | True -> Format.pp_print_string fmt "true"
  | False -> Format.pp_print_string fmt "false"
  | Lt (a, b) -> Format.fprintf fmt "%a < %a" e a e b
  | Le (a, b) -> Format.fprintf fmt "%a <= %a" e a e b
  | Gt (a, b) -> Format.fprintf fmt "%a > %a" e a e b
  | Ge (a, b) -> Format.fprintf fmt "%a >= %a" e a e b
  | Eq (a, b) -> Format.fprintf fmt "%a == %a" e a e b
  | Ne (a, b) -> Format.fprintf fmt "%a != %a" e a e b
  | And (a, b) -> Format.fprintf fmt "(%a and %a)" pp a pp b
  | Or (a, b) -> Format.fprintf fmt "(%a or %a)" pp a pp b
  | Not a -> Format.fprintf fmt "not (%a)" pp a

let to_string c = Format.asprintf "%a" pp c

(* A small splitter on top of Expr's parser: find top-level connectives and
   comparison operators outside parentheses. *)
let of_string s =
  let rec parse s =
    let s = String.trim s in
    let n = String.length s in
    let depth_at = Array.make (n + 1) 0 in
    let d = ref 0 in
    for i = 0 to n - 1 do
      (match s.[i] with '(' -> incr d | ')' -> decr d | _ -> ());
      depth_at.(i + 1) <- !d
    done;
    let split_word w =
      let lw = String.length w in
      let is_ident c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_' in
      let rec go i =
        if i + lw > n then None
        else if depth_at.(i) = 0 && String.sub s i lw = w
                && (i = 0 || not (is_ident s.[i - 1]))
                && (i + lw = n || not (is_ident s.[i + lw]))
        then Some (String.sub s 0 i, String.sub s (i + lw) (n - i - lw))
        else go (i + 1)
      in
      go 0
    in
    match split_word "or" with
    | Some (l, r) -> Or (parse l, parse r)
    | None -> (
        match split_word "and" with
        | Some (l, r) -> And (parse l, parse r)
        | None ->
            if n >= 4 && String.sub s 0 4 = "not " then Not (parse (String.sub s 4 (n - 4)))
            else if s = "true" then True
            else if s = "false" then False
            else begin
              (* comparison at top level *)
              let find_op ops =
                let rec go i =
                  if i >= n then None
                  else if depth_at.(i) = 0 then
                    let rec try_ops = function
                      | [] -> None
                      | op :: rest ->
                          let lo = String.length op in
                          if i + lo <= n && String.sub s i lo = op then Some (i, op) else try_ops rest
                    in
                    match try_ops ops with Some r -> Some r | None -> go (i + 1)
                  else go (i + 1)
                in
                go 0
              in
              match find_op [ "<="; ">="; "=="; "!="; "<"; ">" ] with
              | Some (i, op) ->
                  let l = Expr.of_string (String.sub s 0 i) in
                  let r = Expr.of_string (String.sub s (i + String.length op) (n - i - String.length op)) in
                  (match op with
                  | "<" -> Lt (l, r)
                  | "<=" -> Le (l, r)
                  | ">" -> Gt (l, r)
                  | ">=" -> Ge (l, r)
                  | "==" -> Eq (l, r)
                  | "!=" -> Ne (l, r)
                  | _ -> assert false)
              | None ->
                  if n >= 2 && s.[0] = '(' && s.[n - 1] = ')' && depth_at.(n - 1) = 1 then
                    parse (String.sub s 1 (n - 2))
                  else raise (Expr.Parse_error ("no comparison operator in condition: " ^ s))
            end)
  in
  parse s
