(** Symbolic integer expressions.

    Parametric dataflow representations (Sec. 2.1 of the FuzzyFlow paper)
    require data-container sizes and memlet subsets to be expressions over
    program parameters rather than opaque pointers. This module provides that
    expression language: integer-valued terms over named symbols with the
    arithmetic needed for shapes, strides, ranges and volumes. *)

type t =
  | Int of int
  | Sym of string
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t  (** floor division; evaluation raises on division by zero *)
  | Mod of t * t  (** euclidean remainder, always non-negative for positive divisor *)
  | Min of t * t
  | Max of t * t
  | Neg of t

exception Unbound_symbol of string
exception Division_by_zero

(** Evaluation environments binding symbol names to concrete integers. *)
module Env : sig
  include Map.S with type key = string

  val of_list : (string * int) list -> int t
end

val int : int -> t
val sym : string -> t
val zero : t
val one : t

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val modulo : t -> t -> t
val min_ : t -> t -> t
val max_ : t -> t -> t
val neg : t -> t

(** [eval env e] evaluates [e] to a concrete integer.
    @raise Unbound_symbol if a symbol of [e] is missing from [env].
    @raise Division_by_zero on division or modulo by zero. *)
val eval : int Env.t -> t -> int

(** Free symbols of an expression, in sorted order without duplicates. *)
val free_syms : t -> string list

(** [subst map e] replaces every symbol bound in [map] by its image. *)
val subst : t Env.t -> t -> t

(** [rename_sym ~from ~into e] renames one symbol. *)
val rename_sym : from:string -> into:string -> t -> t

(** Constant folding and algebraic identity simplification (x+0, x*1, x*0,
    constant subtrees, double negation). The result evaluates identically. *)
val simplify : t -> t

(** Structural equality after simplification. A [false] answer does not prove
    semantic inequality. *)
val equal : t -> t -> bool

(** [is_constant e] returns [Some n] when [e] simplifies to the literal [n]. *)
val is_constant : t -> int option

(** {1 Interval reasoning under symbol bounds}

    A bounds function maps each symbol to a conservative [(lo, hi)] interval;
    [None] means unbounded on that side. These power the translation-validation
    certifier, which must resolve [min]/[max] bounds (tile remainders) that
    plain structural simplification cannot. *)

(** The trivial bounds: every symbol is unbounded. *)
val unbounded : string -> int option * int option

(** Conservative interval of an expression's value over all symbol valuations
    admitted by the bounds. Never raises; unknown operators widen to
    [(None, None)]. *)
val interval : (string -> int option * int option) -> t -> int option * int option

(** Sign of [a - b] under the bounds: [`Le] when provably [a <= b] everywhere,
    [`Ge] when provably [a >= b], [`Unknown] otherwise. *)
val compare_under : (string -> int option * int option) -> t -> t -> [ `Le | `Ge | `Unknown ]

(** {!simplify} plus [min]/[max] resolution by interval sign: [min(a, b)]
    collapses to [a] when [a <= b] is provable under the bounds. *)
val simplify_under : (string -> int option * int option) -> t -> t

(** Equality after {!simplify_under}; additionally holds when [a - b] has the
    point interval [0, 0]. A [false] answer proves nothing. *)
val equal_under : (string -> int option * int option) -> t -> t -> bool

val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** Parse expressions of the grammar
    [e ::= int | ident | e + e | e - e | e * e | e / e | e % e
         | min(e, e) | max(e, e) | -e | (e)]
    with the usual precedence.
    @raise Parse_error on malformed input. *)
val of_string : string -> t

exception Parse_error of string
