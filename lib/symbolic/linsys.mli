(** Integer linear-constraint systems decided by Fourier–Motzkin elimination.

    The dependence engine (Sec. 2 of the FuzzyFlow paper: precise dataflow over
    parametric memlet subsets) reduces access-pair disjointness to the
    satisfiability of small conjunctions of integer linear constraints. This
    module is the decision core: an Omega-test-lite pipeline of

    - equality propagation with a GCD divisibility pre-test,
    - normalization tightening (divide each inequality by the coefficient GCD,
      floor the constant — exact over integers),
    - rational Fourier–Motzkin elimination, and
    - integer witness reconstruction by back-substitution, with every candidate
      model re-verified against the original system.

    The three-valued answer is sound in both decisive directions: [Unsat] is a
    proof that no integer solution exists (the rational relaxation is already
    empty, or a GCD test failed), and [Sat v] carries a valuation [v] that has
    been checked to satisfy every original constraint. Whenever integrality is
    in doubt — an integer gap between rational bounds, a fuel cap, a failed
    verification — the answer degrades to [Unknown], never to a wrong verdict. *)

(** A linear term [const + Σ coeff·var] with sorted, non-zero coefficients. *)
type lin = private { const : int; coeffs : (string * int) list }

val const : int -> lin
val var : ?coeff:int -> string -> lin
val add : lin -> lin -> lin
val sub : lin -> lin -> lin
val scale : int -> lin -> lin

(** [of_terms c l] builds [c + Σ coeff·var], merging duplicate variables. *)
val of_terms : int -> (string * int) list -> lin

(** Evaluate under a total valuation.
    @raise Not_found when a variable is unbound. *)
val eval_lin : (string * int) list -> lin -> int

(** A constraint: [Ge0 l] means [l >= 0]; [Eq0 l] means [l = 0]. *)
type cstr = Ge0 of lin | Eq0 of lin

(** [ge a b] is [a >= b]; [le a b] is [a <= b]; [eq a b] is [a = b]. *)
val ge : lin -> lin -> cstr

val le : lin -> lin -> cstr
val eq : lin -> lin -> cstr

val pp_lin : Format.formatter -> lin -> unit
val pp_cstr : Format.formatter -> cstr -> unit
val cstr_to_string : cstr -> string

(** [holds v c] checks [c] under the total valuation [v] (missing variables
    default to [0]). *)
val holds : (string * int) list -> cstr -> bool

type verdict =
  | Unsat  (** proof: no integer solution exists *)
  | Sat of (string * int) list
      (** a verified integer model binding every variable of the system *)
  | Unknown  (** fuel cap, integer gap, or failed witness verification *)

(** Decide a conjunction of constraints. [max_cstrs] (default [4096]) caps the
    intermediate constraint count during elimination; exceeding it yields
    [Unknown]. Deterministic: variable elimination order depends only on the
    input system. *)
val solve : ?max_cstrs:int -> cstr list -> verdict

(** {1 Lowering symbolic expressions}

    Memlet subset endpoints are {!Expr.t} terms that may contain [min]/[max]
    (tile remainders) and [div]/[mod] (tiling arithmetic). These are not linear
    but become linear under a disjunctive case split: each {!alt} pairs a linear
    term with the guard constraints under which it equals the expression. The
    union of the guard regions covers every valuation, so a query is decided by
    solving each alternative. *)

type alt = { guards : cstr list; term : lin }

(** [of_expr ~fresh e] lowers [e] to covering alternatives, or [None] when the
    expression is not affine ([x*y], division by a non-constant, …).
    [min]/[max] split on the sign of the operand difference; [e div c] and
    [e mod c] for a positive constant [c] introduce auxiliary quotient and
    remainder variables obtained from [fresh] (callers share one generator per
    system so auxiliary names never collide). The number of alternatives is
    capped at [64]; beyond that the lowering gives up with [None]. *)
val of_expr : fresh:(unit -> string) -> Expr.t -> alt list option

(** A deterministic generator of auxiliary variable names [$a0], [$a1], …
    Auxiliary names start with ['$'] so callers can filter them from reported
    witnesses; source expressions never contain them. *)
val gensym : unit -> unit -> string

(** [is_aux v] holds for generator-produced auxiliary names. *)
val is_aux : string -> bool
