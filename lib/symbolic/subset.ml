type range = { lo : Expr.t; hi : Expr.t; step : Expr.t }
type t = range list
type crange = { clo : int; chi : int; cstep : int }

let dim ?(step = Expr.one) lo hi = { lo; hi; step }
let index i = { lo = i; hi = i; step = Expr.one }
let full shape = List.map (fun d -> dim Expr.zero (Expr.sub d Expr.one)) shape
let scalar = []
let num_dims s = List.length s

let crange_count { clo; chi; cstep } =
  if cstep = 0 then invalid_arg "Subset.crange_count: zero step"
  else if cstep > 0 then if chi < clo then 0 else ((chi - clo) / cstep) + 1
  else if chi > clo then 0
  else ((clo - chi) / -cstep) + 1

let concretize_range env { lo; hi; step } =
  { clo = Expr.eval env lo; chi = Expr.eval env hi; cstep = Expr.eval env step }

let concretize env s = List.map (concretize_range env) s

let volume s =
  List.fold_left
    (fun acc { lo; hi; step } ->
      let count =
        Expr.(max_ zero (add (div (sub hi lo) step) one))
      in
      Expr.mul acc count)
    Expr.one s

let volume_eval env s =
  List.fold_left (fun acc r -> acc * crange_count (concretize_range env r)) 1 s

let crange_elements r =
  let n = crange_count r in
  List.init n (fun i -> r.clo + (i * r.cstep))

let bbox r =
  if r.cstep >= 0 then (r.clo, r.chi) else (r.chi, r.clo)

let overlaps a b =
  if List.length a <> List.length b then
    (* Different dimensionality on the same container should not happen; be
       conservative. *)
    true
  else
    List.for_all2
      (fun ra rb ->
        if crange_count ra = 0 || crange_count rb = 0 then false
        else
          let alo, ahi = bbox ra and blo, bhi = bbox rb in
          alo <= bhi && blo <= ahi)
      a b

let covers a b =
  List.length a = List.length b
  && List.for_all2
       (fun ra rb ->
         let alo, ahi = bbox ra and blo, bhi = bbox rb in
         abs ra.cstep = 1 && alo <= blo && bhi <= ahi)
       a b

module Sset = Set.Make (String)

let free_syms s =
  let syms_of e = Expr.free_syms e in
  Sset.elements
    (List.fold_left
       (fun acc { lo; hi; step } ->
         List.fold_left (fun a x -> Sset.add x a) acc (syms_of lo @ syms_of hi @ syms_of step))
       Sset.empty s)

let subst map s =
  List.map
    (fun { lo; hi; step } ->
      { lo = Expr.subst map lo; hi = Expr.subst map hi; step = Expr.subst map step })
    s

let rename_sym ~from ~into s = subst (Expr.Env.singleton from (Expr.Sym into)) s

let rename_syms pairs s =
  subst (Expr.Env.of_seq (List.to_seq (List.map (fun (f, i) -> (f, Expr.Sym i)) pairs))) s

(* [a] ends strictly before [b] starts when a's largest element minus b's
   smallest simplifies to a negative literal. For a decreasing range the
   largest element is [lo], not [hi]; a symbolic step of unknown sign yields
   no endpoints and thus no proof. Purely structural: a [false] answer proves
   nothing. *)
let endpoints (r : range) =
  match Expr.is_constant (Expr.simplify r.step) with
  | Some st when st < 0 -> Some (r.hi, r.lo)  (* (smallest, largest) *)
  | Some _ -> Some (r.lo, r.hi)
  | None -> None

let range_before (a : range) (b : range) =
  match (endpoints a, endpoints b) with
  | Some (_, amax), Some (bmin, _) -> (
      match Expr.is_constant (Expr.simplify (Expr.sub amax bmin)) with
      | Some d -> d < 0
      | None -> false)
  | _ -> false

let definitely_disjoint a b =
  List.length a = List.length b
  && List.exists2 (fun ra rb -> range_before ra rb || range_before rb ra) a b

(* ---- normalization, union and symbolic equality ----------------------- *)

let normalize_range bnds (r : range) =
  let s = Expr.simplify_under bnds in
  let lo = s r.lo and hi = s r.hi and step = s r.step in
  if Expr.equal lo hi then { lo; hi; step = Expr.one }
  else
    match (lo, hi, step) with
    (* a fully constant decreasing range covers the same elements as its
       increasing mirror, re-anchored so iteration order is forgotten *)
    | Expr.Int l, Expr.Int h, Expr.Int st when st < 0 ->
        let n = crange_count { clo = l; chi = h; cstep = st } in
        if n = 0 then { lo; hi; step }
        else { lo = Expr.int (l + ((n - 1) * st)); hi = Expr.int l; step = Expr.int (-st) }
    | _ -> { lo; hi; step }

let normalize ?(bounds = Expr.unbounded) s = List.map (normalize_range bounds) s

let equal ?(bounds = Expr.unbounded) a b =
  let a = normalize ~bounds a and b = normalize ~bounds b in
  List.length a = List.length b
  && List.for_all2
       (fun (ra : range) (rb : range) ->
         Expr.equal_under bounds ra.lo rb.lo
         && Expr.equal_under bounds ra.hi rb.hi
         && Expr.equal_under bounds ra.step rb.step)
       a b

(* Bounding-box union: exact when one side contains the other, otherwise a
   conservative over-approximation (strides collapse to 1 when they differ).
   Both sides of a translation-validation comparison are unioned by this same
   operator, so over-approximation cancels out of the equality check. *)
let union_range bnds (a : range) (b : range) =
  if a = b then a
  else
    let s = Expr.simplify_under bnds in
    {
      lo = s (Expr.min_ a.lo b.lo);
      hi = s (Expr.max_ a.hi b.hi);
      step = (if Expr.equal a.step b.step && Expr.equal a.lo b.lo then a.step else Expr.one);
    }

let union ?(bounds = Expr.unbounded) a b =
  if a = [] then b
  else if b = [] then a
  else if List.length a <> List.length b then
    invalid_arg
      (Printf.sprintf "Subset.union: %d-dim vs %d-dim subset" (List.length a) (List.length b))
  else List.map2 (union_range bounds) a b

module Iset = Set.Make (struct
  type t = int list

  let compare = compare
end)

(* All concrete element index vectors of a subset, or [None] when any range
   fails to concretize or the element count exceeds [cap]. *)
let elements_under ?(cap = 4096) env s =
  match concretize env s with
  | exception _ -> None
  | cs ->
      if List.fold_left (fun v r -> v * crange_count r) 1 cs > cap then None
      else
        let rec go = function
          | [] -> [ [] ]
          | r :: rest ->
              let tails = go rest in
              List.concat_map (fun i -> List.map (fun t -> i :: t) tails) (crange_elements r)
        in
        Some (Iset.of_list (go cs))

(* Search a small grid of symbol valuations for one under which [a] and [b]
   cover different element sets. [symbols] gives each symbol's candidate
   interval; a handful of values per symbol (endpoints plus midpoint) keeps
   the grid tractable. Returns the valuation and one differing element. *)
let difference_witness ?(cap = 4096) ~symbols a b =
  let candidates (lo, hi) =
    let lo = Stdlib.min lo hi and hi = Stdlib.max lo hi in
    List.sort_uniq compare [ lo; Stdlib.min hi (lo + 1); (lo + hi) / 2; hi ]
  in
  let rec grid = function
    | [] -> [ [] ]
    | (s, range) :: rest ->
        let tails = grid rest in
        List.concat_map (fun v -> List.map (fun t -> (s, v) :: t) tails) (candidates range)
  in
  let check valuation =
    let env = Expr.Env.of_list valuation in
    match (elements_under ~cap env a, elements_under ~cap env b) with
    | Some ea, Some eb ->
        let d = Iset.union (Iset.diff ea eb) (Iset.diff eb ea) in
        if Iset.is_empty d then None else Some (valuation, Iset.min_elt d)
    | _ -> None
  in
  List.find_map check (grid symbols)

let pp_range fmt { lo; hi; step } =
  if Expr.equal lo hi then Expr.pp fmt lo
  else if Expr.equal step Expr.one then Format.fprintf fmt "%a:%a" Expr.pp lo Expr.pp hi
  else Format.fprintf fmt "%a:%a:%a" Expr.pp lo Expr.pp hi Expr.pp step

let pp fmt s =
  Format.fprintf fmt "[%a]" (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ") pp_range) s

let to_string s = Format.asprintf "%a" pp s

(* Split a string on top-level (paren-depth-0) occurrences of a character. *)
let split_top c s =
  let n = String.length s in
  let parts = ref [] in
  let start = ref 0 in
  let depth = ref 0 in
  for i = 0 to n - 1 do
    match s.[i] with
    | '(' -> incr depth
    | ')' -> decr depth
    | ch when ch = c && !depth = 0 ->
        parts := String.sub s !start (i - !start) :: !parts;
        start := i + 1
    | _ -> ()
  done;
  List.rev (String.sub s !start (n - !start) :: !parts)

let of_string s =
  let s = String.trim s in
  let s =
    let n = String.length s in
    if n >= 2 && s.[0] = '[' && s.[n - 1] = ']' then String.sub s 1 (n - 2) else s
  in
  if String.trim s = "" then []
  else
    split_top ',' s
    |> List.map (fun part ->
           match split_top ':' part |> List.map String.trim with
           | [ i ] -> index (Expr.of_string i)
           | [ lo; hi ] -> dim (Expr.of_string lo) (Expr.of_string hi)
           | [ lo; hi; st ] -> dim ~step:(Expr.of_string st) (Expr.of_string lo) (Expr.of_string hi)
           | _ -> raise (Expr.Parse_error ("bad range: " ^ part)))
