(* The fuzzyflow command-line tool.

     fuzzyflow list                      -- workloads and transformations
     fuzzyflow test -w atax -x BufferTiling(wrong-schedule) [-t 20] [-s 42]
     fuzzyflow campaign [-w chain -w atax ...] [--correct] [-t 10]
                        [-j 4] [--deadline 30] [--journal c.jsonl] [--resume]
                        [--corpus corpus/] [--progress]
     fuzzyflow corpus replay corpus/    -- regression-gate saved failures
     fuzzyflow corpus list corpus/
     fuzzyflow cutout -w matmul_chain --node N --state S [-D N=8]
     fuzzyflow analyze -w atax [-D N=8] [--carried]
                                        -- static dataflow oracle findings
     fuzzyflow lint [--json] [-o lint.json] [-w atax ...]
                                        -- oracle over workloads + change-set
                                           audit over the transform catalog
     fuzzyflow certify -w scale -x MapTiling [-D N=8]
                                        -- symbolic translation validation
     fuzzyflow dot -w softmax           -- dump a workload as graphviz

   Transformations are addressed by their registry names ("fuzzyflow list"
   prints them); each site of the chosen transformation is tested. *)

open Cmdliner

let workloads () =
  Workloads.Npbench.all () @ Workloads.Npb_frontend.all ()
  @ [
      ("bert", Workloads.Bert.build ());
      ("cloudsc", Workloads.Cloudsc.build ());
      ("fig4", Workloads.Fig4.build ());
      ("sddmm", (let g, _, _ = Workloads.Sddmm.rank_program () in g));
    ]

let xform_catalog () =
  Transforms.Registry.as_shipped () @ Transforms.Registry.all_correct ()
  @ [
      Transforms.Map_tiling.make Transforms.Map_tiling.Off_by_one;
      Transforms.Map_tiling.make Transforms.Map_tiling.No_remainder;
      Transforms.Gpu_kernel_extraction.make Transforms.Gpu_kernel_extraction.Correct;
      Transforms.Gpu_kernel_extraction.make Transforms.Gpu_kernel_extraction.Full_copy_back;
      Transforms.Loop_unrolling.make Transforms.Loop_unrolling.Correct;
      Transforms.Loop_unrolling.make Transforms.Loop_unrolling.Negative_step_sign_error;
    ]
  |> List.fold_left
       (fun acc (x : Transforms.Xform.t) ->
         if List.exists (fun (y : Transforms.Xform.t) -> y.name = x.name) acc then acc
         else x :: acc)
       []
  |> List.rev

let find_workload name =
  match List.assoc_opt name (workloads ()) with
  | Some g -> g
  | None ->
      Printf.eprintf "unknown workload %s (try: fuzzyflow list)\n" name;
      exit 2

let find_xform name =
  match Transforms.Registry.by_name (xform_catalog ()) name with
  | Some x -> x
  | None ->
      Printf.eprintf "unknown transformation %s (try: fuzzyflow list)\n" name;
      exit 2

(* ---------------- arguments ---------------- *)

let workload_arg =
  Arg.(required & opt (some string) None & info [ "w"; "workload" ] ~docv:"NAME" ~doc:"Workload to operate on.")

let workloads_arg =
  Arg.(value & opt_all string [] & info [ "w"; "workload" ] ~docv:"NAME" ~doc:"Workloads (repeatable; default: all).")

let xform_arg =
  Arg.(required & opt (some string) None & info [ "x"; "transformation" ] ~docv:"NAME" ~doc:"Transformation to test.")

let trials_arg =
  Arg.(value & opt int 20 & info [ "t"; "trials" ] ~docv:"N" ~doc:"Fuzzing trials per instance.")

let seed_arg = Arg.(value & opt int 42 & info [ "s"; "seed" ] ~docv:"SEED" ~doc:"Fuzzing seed.")

let max_size_arg =
  Arg.(value & opt int 12 & info [ "max-size" ] ~docv:"N" ~doc:"Upper bound for sampled size symbols.")

let no_min_cut_arg =
  Arg.(value & flag & info [ "no-min-cut" ] ~doc:"Disable the minimum input-flow cut.")

let defines_arg =
  Arg.(
    value
    & opt_all (pair ~sep:'=' string int) []
    & info [ "D"; "define" ] ~docv:"SYM=VAL" ~doc:"Concretization symbol values (repeatable).")

let save_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "save" ] ~docv:"DIR" ~doc:"Save failing test cases under $(docv).")

let batch_arg =
  Arg.(
    value & opt string "1"
    & info [ "batch" ] ~docv:"WIDTH"
        ~doc:
          "Trial batch width for the kernel interpreter tier: a positive integer, or \
           $(b,auto) to derive one from the trial budget. Width 1 keeps the serial plan \
           path; verdicts and journals are byte-identical at every width.")

let resolve_batch ~trials s =
  match String.lowercase_ascii s with
  | "auto" -> Engine.Worker.auto_batch ~trials
  | s -> (
      match int_of_string_opt s with
      | Some n when n >= 1 -> n
      | _ ->
          prerr_endline ("invalid --batch (expected a positive integer or \"auto\"): " ^ s);
          exit 2)

let mk_config trials seed max_size no_min_cut defines =
  {
    Fuzzyflow.Difftest.default_config with
    trials;
    seed;
    max_size;
    use_min_cut = not no_min_cut;
    concretization = defines;
  }

(* ---------------- commands ---------------- *)

let list_cmd =
  let run () =
    print_endline "workloads:";
    List.iter (fun (n, _) -> Printf.printf "  %s\n" n) (workloads ());
    print_endline "transformations:";
    List.iter (fun (x : Transforms.Xform.t) -> Printf.printf "  %s\n" x.name) (xform_catalog ())
  in
  Cmd.v (Cmd.info "list" ~doc:"List available workloads and transformations.")
    Term.(const run $ const ())

let test_cmd =
  let run w x trials seed max_size no_min_cut defines save =
    let g = find_workload w in
    let xform = find_xform x in
    let config = mk_config trials seed max_size no_min_cut defines in
    let sites = xform.find g in
    if sites = [] then print_endline "no application sites found"
    else begin
      let failing = ref 0 in
      List.iter
        (fun site ->
          let r = Fuzzyflow.Difftest.test_instance ~config g xform site in
          Format.printf "%a@." Fuzzyflow.Difftest.pp_report r;
          match r.verdict with
          | Fuzzyflow.Difftest.Pass -> ()
          | Fuzzyflow.Difftest.Fail _ -> (
              incr failing;
              match save with
              | None -> ()
              | Some dir -> (
                  match Fuzzyflow.Testcase.of_report ~config ~original:g r with
                  | Some tc ->
                      List.iter (Printf.printf "  wrote %s\n") (Fuzzyflow.Testcase.save dir tc)
                  | None -> ())))
        sites;
      Printf.printf "%d/%d instances failing\n" !failing (List.length sites);
      if !failing > 0 then exit 1
    end
  in
  Cmd.v
    (Cmd.info "test" ~doc:"Test every instance of a transformation on a workload.")
    Term.(
      const run $ workload_arg $ xform_arg $ trials_arg $ seed_arg $ max_size_arg $ no_min_cut_arg
      $ defines_arg $ save_arg)

(* ---------------- generated programs ---------------- *)

let style_arg =
  Arg.(
    value
    & opt_all string []
    & info [ "style" ] ~docv:"STYLE"
        ~doc:
          (Printf.sprintf "Composition style (repeatable; default: all). One of: %s."
             (String.concat ", " Gen.Styles.names)))

let resolve_styles = function
  | [] -> Gen.Styles.all
  | names ->
      List.map
        (fun n ->
          match Gen.Styles.by_name n with
          | Some s -> s
          | None ->
              Printf.eprintf "unknown style %s (one of: %s)\n" n
                (String.concat ", " Gen.Styles.names);
              exit 2)
        names

(* Admitted generated programs for one style, named so any component can
   regenerate them (Faultlab.Plan.workload_by_name resolves gen_* names). *)
let generated_programs ~style ~seed ~n =
  let admitted, _ = Gen.Admit.batch ~style ~seed ~n () in
  List.map (fun (c : Gen.Generate.t) -> (c.Gen.Generate.name, c.Gen.Generate.graph)) admitted

let generate_cmd =
  let count_arg =
    Arg.(
      value & opt int 20
      & info [ "n"; "count" ] ~docv:"N" ~doc:"Admitted candidates to produce per style.")
  in
  let budget_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "budget" ] ~docv:"N" ~doc:"Maximum grammar fragments per candidate.")
  in
  let emit_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "emit" ] ~docv:"DIR" ~doc:"Write each admitted graph to $(docv)/<name>.sdfg.")
  in
  let min_admit_arg =
    Arg.(
      value & opt float 0.
      & info [ "min-admit" ] ~docv:"RATE"
          ~doc:"Exit 1 if any style's admission rate falls below $(docv) (0..1).")
  in
  let require_targets_arg =
    Arg.(
      value & flag
      & info [ "require-targets" ]
          ~doc:
            "Exit 1 unless, per style, every targeted transformation matches at least one \
             admitted graph (the style-effectiveness floor).")
  in
  let run seed styles count budget emit min_admit require_targets =
    let budget = Option.map Gen.Grammar.budget budget in
    (match emit with
    | Some dir -> if not (Sys.file_exists dir) then Sys.mkdir dir 0o755
    | None -> ());
    let failed = ref false in
    List.iter
      (fun (style : Gen.Styles.t) ->
        let admitted, stats = Gen.Admit.batch ?budget ~style ~seed ~n:count () in
        Format.printf "%a@." Gen.Admit.pp_stats stats;
        let matches = Hashtbl.create 8 in
        List.iter
          (fun (c : Gen.Generate.t) ->
            Printf.printf "  %s rules=%s\n" c.Gen.Generate.name
              (String.concat "," (List.map Gen.Grammar.name c.Gen.Generate.rules));
            List.iter
              (fun (x, n) ->
                Hashtbl.replace matches x (n + Option.value ~default:0 (Hashtbl.find_opt matches x)))
              (Gen.Styles.match_counts c.Gen.Generate.graph);
            match emit with
            | Some dir ->
                Sdfg.Serialize.save
                  (Filename.concat dir (c.Gen.Generate.name ^ ".sdfg"))
                  c.Gen.Generate.graph
            | None -> ())
          admitted;
        Printf.printf "  targets:";
        List.iter
          (fun t ->
            let hits = Option.value ~default:0 (Hashtbl.find_opt matches t) in
            Printf.printf " %s=%d" t hits;
            if require_targets && hits = 0 then failed := true)
          style.Gen.Styles.targets;
        print_newline ();
        let rate =
          if stats.Gen.Admit.generated = 0 then 0.
          else float_of_int stats.Gen.Admit.admitted /. float_of_int stats.Gen.Admit.generated
        in
        if rate < min_admit then begin
          Printf.printf "  admission rate %.2f below floor %.2f\n" rate min_admit;
          failed := true
        end)
      (resolve_styles styles);
    if !failed then exit 1
  in
  Cmd.v
    (Cmd.info "generate"
       ~doc:
         "Generate seeded random SDFGs steered by composition styles; every candidate passes \
          the admission gate (structural validation + static oracle + smoke execution) \
          before it is listed or emitted.")
    Term.(
      const run $ seed_arg $ style_arg $ count_arg $ budget_arg $ emit_arg $ min_admit_arg
      $ require_targets_arg)

let campaign_cmd =
  let correct_arg =
    Arg.(value & flag & info [ "correct" ] ~doc:"Use the fixed transformation set instead of the shipped one.")
  in
  let certify_arg =
    Arg.(
      value & flag
      & info [ "certify" ]
          ~doc:"Skip the fuzz trials of instances the translation validator proves equivalent.")
  in
  let static_arg =
    Arg.(
      value & flag
      & info [ "static" ]
          ~doc:
            "Run the static evidence channel (change-set audit and delta oracle with the \
             exact dependence tier) on every instance; findings and decided/sampled pair \
             counts ride on the verdicts and the journal.")
  in
  let j_arg =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Worker processes. Verdicts are identical for any $(docv) and seed.")
  in
  let deadline_arg =
    Arg.(
      value & opt float 60.
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:"Wall-clock budget per instance; overruns are killed and recorded as outcomes.")
  in
  let journal_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"FILE" ~doc:"Append-only JSONL journal of per-instance outcomes.")
  in
  let resume_arg =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:"Replay outcomes already in $(b,--journal) instead of re-fuzzing them.")
  in
  let corpus_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:"Persist failing test cases under $(docv), deduplicated by finding signature.")
  in
  let progress_arg =
    Arg.(value & flag & info [ "progress" ] ~doc:"Live campaign telemetry on stderr.")
  in
  let limit_per_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "limit-per" ] ~docv:"N"
          ~doc:"Test at most $(docv) sites per (workload, transformation) pair.")
  in
  let worker_eps_arg =
    Arg.(
      value & opt_all string []
      & info [ "worker" ] ~docv:"HOST:PORT"
          ~doc:
            "Dispatch instances to a remote worker (repeatable; start one with \
             $(b,fuzzyflow worker)). Failed or dead workers are retried, quarantined and \
             finally degraded to the local pool — verdicts stay identical to a local run.")
  in
  let generated_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "generated" ] ~docv:"N"
          ~doc:
            "Add $(docv) admitted generated programs per $(b,--style) (generated from the \
             campaign seed). Without $(b,-w), the campaign runs on the generated programs \
             alone.")
  in
  let run ws correct certify static trials seed max_size no_min_cut defines j deadline journal
      resume corpus progress limit_per generated styles worker_eps batch =
    let defines = if defines = [] then [ ("N", 8); ("T", 3) ] else defines in
    let config = mk_config trials seed max_size no_min_cut defines in
    let config = { config with Fuzzyflow.Difftest.batch = resolve_batch ~trials batch } in
    let gen_programs =
      match generated with
      | None -> []
      | Some n ->
          List.concat_map
            (fun style -> generated_programs ~style ~seed ~n)
            (resolve_styles styles)
    in
    let programs =
      match (ws, gen_programs) with
      | [], [] -> workloads ()
      | [], gps -> gps
      | ws, gps -> List.map (fun w -> (w, find_workload w)) ws @ gps
    in
    let xforms =
      if correct then Transforms.Registry.all_correct () else Transforms.Registry.as_shipped ()
    in
    if resume && journal = None then begin
      prerr_endline "campaign: --resume requires --journal";
      exit 2
    end;
    let workers =
      List.map
        (fun s ->
          try Engine.Supervisor.endpoint_of_string s
          with Invalid_argument m ->
            prerr_endline ("campaign: " ^ m);
            exit 2)
        worker_eps
    in
    let engine_needed =
      j > 1 || journal <> None || corpus <> None || progress || limit_per <> None
      || workers <> []
    in
    let c =
      if engine_needed then
        let options =
          {
            Engine.Worker.j;
            deadline_s = deadline;
            journal_path = journal;
            resume;
            corpus_dir = corpus;
            progress;
            limit_per;
            static_gate = static;
            certify_gate = certify;
            remote =
              (if workers = [] then None
               else Some (Engine.Supervisor.executor ~workers ()));
            journal_sink = None;
            on_telemetry = None;
            batching = Engine.Worker.Inherit;
          }
        in
        Engine.Worker.run_campaign ~options ~config ~catalog:(xform_catalog ()) programs xforms
      else Fuzzyflow.Campaign.run ~config ~static_gate:static ~certify_gate:certify programs xforms
    in
    print_string (Fuzzyflow.Campaign.to_table c)
  in
  Cmd.v
    (Cmd.info "campaign" ~doc:"Run a transformation campaign over workloads (Table 2 style).")
    Term.(
      const run $ workloads_arg $ correct_arg $ certify_arg $ static_arg $ trials_arg $ seed_arg
      $ max_size_arg $ no_min_cut_arg $ defines_arg $ j_arg $ deadline_arg $ journal_arg
      $ resume_arg $ corpus_arg
      $ progress_arg $ limit_per_arg $ generated_arg $ style_arg $ worker_eps_arg $ batch_arg)

let corpus_dir_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR" ~doc:"Corpus directory.")

let corpus_list_cmd =
  let run dir =
    let entries = Engine.Corpus.entries dir in
    if entries = [] then Printf.printf "corpus %s: empty\n" dir
    else
      List.iter
        (fun (m : Engine.Corpus.meta) ->
          Format.printf "%s  %-28s %-12s %-10s @@ %a@." m.signature m.xform m.program m.klass
            Transforms.Xform.pp_site m.site)
        entries
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List corpus entries (signature, transformation, program, class, site).")
    Term.(const run $ corpus_dir_arg)

let corpus_replay_cmd =
  let run dir =
    let outcomes = Engine.Corpus.replay ~catalog:(xform_catalog ()) dir in
    if outcomes = [] then begin
      Printf.printf "corpus %s: empty\n" dir;
      exit 0
    end;
    let stale = ref 0 in
    List.iter
      (fun (o : Engine.Corpus.replay_outcome) ->
        if not o.reproduced then incr stale;
        Printf.printf "%s %s %s: %s\n"
          (if o.reproduced then "REPRODUCED" else "STALE     ")
          o.meta.Engine.Corpus.signature o.meta.Engine.Corpus.xform o.detail)
      outcomes;
    Printf.printf "%d/%d entries reproduce\n" (List.length outcomes - !stale) (List.length outcomes);
    if !stale > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Replay every corpus entry against the current code: re-apply the recorded \
          transformation and re-run the stored fault-inducing inputs. Exits non-zero if any \
          entry no longer reproduces.")
    Term.(const run $ corpus_dir_arg)

let corpus_cmd =
  Cmd.group
    (Cmd.info "corpus" ~doc:"Inspect and replay the persistent test-case corpus.")
    [ corpus_list_cmd; corpus_replay_cmd ]

let cutout_cmd =
  let state_arg =
    Arg.(required & opt (some int) None & info [ "state" ] ~docv:"ID" ~doc:"State id of the seed.")
  in
  let nodes_arg =
    Arg.(non_empty & opt_all int [] & info [ "node" ] ~docv:"ID" ~doc:"Seed node ids (repeatable).")
  in
  let run w state nodes defines =
    let g = find_workload w in
    let cut =
      Fuzzyflow.Cutout.extract_dataflow ~options:{ Fuzzyflow.Cutout.symbols = defines } g ~state
        ~nodes
    in
    Format.printf "%a@." Fuzzyflow.Cutout.pp cut;
    let cut', stats = Fuzzyflow.Min_cut.minimize g cut ~symbols:defines in
    Printf.printf "min input-flow cut: %d -> %d elements; inputs {%s}\n" stats.original_elements
      stats.minimized_elements
      (String.concat ", " cut'.input_config)
  in
  Cmd.v
    (Cmd.info "cutout" ~doc:"Extract and minimize a cutout around given nodes.")
    Term.(const run $ workload_arg $ state_arg $ nodes_arg $ defines_arg)

let default_symbols_for name =
  match name with
  | "bert_encoder" -> Workloads.Bert.default_symbols
  | "cloudsc_synth" -> Workloads.Cloudsc.default_symbols
  | "sddmm_rank" -> [ ("LROWS", 4); ("NCOLS", 6); ("K", 3) ]
  | _ -> [ ("N", 8); ("T", 3) ]

let analyze_cmd =
  let carried_arg =
    Arg.(
      value & flag
      & info [ "carried" ]
          ~doc:"Also report sequential loop-carried dependences (intended in many programs).")
  in
  let run w defines carried =
    let g = find_workload w in
    let symbols =
      let base = if defines = [] then default_symbols_for (Sdfg.Graph.name g) else defines in
      List.filter (fun (s, _) -> List.mem s (Sdfg.Graph.all_free_syms g)) base
    in
    match Analysis.Oracle.analyze ~carried ~symbols g with
    | [] ->
        Printf.printf "%s: no findings (symbols: %s)\n" w
          (String.concat ", " (List.map (fun (s, v) -> Printf.sprintf "%s=%d" s v) symbols))
    | findings ->
        let errors =
          List.length
            (List.filter
               (fun (f : Analysis.Report.finding) -> f.severity = Analysis.Report.Error)
               findings)
        in
        Printf.printf "%s: %d finding(s), %d definite\n" w (List.length findings) errors;
        List.iter (fun f -> Format.printf "  %a@." Analysis.Report.pp f) findings;
        (* CI-gate semantics: warnings inform, only definite findings fail *)
        if errors > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Run the static dataflow oracle (races, out-of-bounds, def-use, liveness, reaching \
          definitions) on a workload. Exits non-zero only on definite (error-severity) findings, \
          so warnings never break a CI gate.")
    Term.(const run $ workload_arg $ defines_arg $ carried_arg)

(* ---- lint: whole-suite static health check ------------------------------- *)

module Json = Engine.Journal.Json

let finding_json extra (f : Analysis.Report.finding) =
  Json.Obj
    (extra
    @ [
        ("pass", Json.Str (Analysis.Report.pass_name f.Analysis.Report.pass));
        ("severity", Json.Str (Analysis.Report.severity_name f.Analysis.Report.severity));
        ("state", Json.Num (float_of_int f.Analysis.Report.state));
        ("node", Json.Num (float_of_int f.Analysis.Report.node));
        ("container", Json.Str f.Analysis.Report.container);
        ("subsets", Json.Arr (List.map (fun s -> Json.Str s) f.Analysis.Report.subsets));
        ("detail", Json.Str f.Analysis.Report.detail);
      ])

let lint_cmd =
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the machine-readable JSON report on stdout.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Also write the JSON report to $(docv).")
  in
  let run ws json out defines =
    let programs =
      match ws with [] -> workloads () | ws -> List.map (fun w -> (w, find_workload w)) ws
    in
    (* dataflow oracle over every selected workload *)
    let oracle_rows =
      List.map
        (fun (name, g) ->
          let symbols =
            let base = if defines = [] then default_symbols_for (Sdfg.Graph.name g) else defines in
            List.filter (fun (s, _) -> List.mem s (Sdfg.Graph.all_free_syms g)) base
          in
          (name, Analysis.Oracle.analyze ~symbols g))
        programs
    in
    (* interstate dataflow passes and the exact dependence tier, surfaced
       individually: the oracle already folds their findings in, but the raw
       per-pass view (dead containers, dead writes, reaching-definition
       findings, decided-pair counters, coverage notes) is what a lint
       consumer wants to drill into *)
    let dataflow_rows =
      List.map
        (fun (name, g) ->
          let symbols =
            let base = if defines = [] then default_symbols_for (Sdfg.Graph.name g) else defines in
            List.filter (fun (s, _) -> List.mem s (Sdfg.Graph.all_free_syms g)) base
          in
          let dead_containers =
            match Analysis.Liveness.dead_containers g with l -> l | exception _ -> []
          in
          let dead_writes =
            match Analysis.Liveness.dead_writes g with l -> l | exception _ -> []
          in
          let reachdef = match Analysis.Reachdef.check g with l -> l | exception _ -> [] in
          let stats =
            match Analysis.Oracle.analyze_stats ~carried:true ~symbols g with
            | _, s -> s
            | exception _ -> Analysis.Races.stats_zero
          in
          let coverage =
            match Analysis.Defuse.check_coverage ~symbols g with l -> l | exception _ -> []
          in
          (name, dead_containers, dead_writes, reachdef, stats, coverage))
        programs
    in
    (* change-set audit over every (workload, transformation, site) instance of
       the registry catalog: each declaration must cover its true diff *)
    let xforms =
      Transforms.Registry.as_shipped () @ Transforms.Registry.all_correct ()
      |> List.fold_left
           (fun acc (x : Transforms.Xform.t) ->
             if List.exists (fun (y : Transforms.Xform.t) -> y.name = x.name) acc then acc
             else x :: acc)
           []
      |> List.rev
    in
    let audit_instances = ref 0 in
    let audit_rows =
      List.concat_map
        (fun (pname, g) ->
          List.concat_map
            (fun (x : Transforms.Xform.t) ->
              List.filter_map
                (fun site ->
                  match Analysis.Audit.check_xform g x site with
                  | None -> None
                  | Some fs ->
                      incr audit_instances;
                      if fs = [] then None else Some (pname, x.name, site, fs))
                (x.find g))
            xforms)
        programs
    in
    let all_findings =
      List.concat_map snd oracle_rows @ List.concat_map (fun (_, _, _, fs) -> fs) audit_rows
    in
    let count sev =
      List.length
        (List.filter (fun (f : Analysis.Report.finding) -> f.severity = sev) all_findings)
    in
    let errors = count Analysis.Report.Error and warnings = count Analysis.Report.Warning in
    let report =
      Json.Obj
        [
          ("kind", Json.Str "lint");
          ("workloads", Json.Num (float_of_int (List.length programs)));
          ("transform_instances", Json.Num (float_of_int !audit_instances));
          ("errors", Json.Num (float_of_int errors));
          ("warnings", Json.Num (float_of_int warnings));
          ( "oracle",
            Json.Arr
              (List.filter_map
                 (fun (name, fs) ->
                   if fs = [] then None
                   else
                     Some
                       (Json.Obj
                          [
                            ("workload", Json.Str name);
                            ("findings", Json.Arr (List.map (finding_json []) fs));
                          ]))
                 oracle_rows) );
          ( "dataflow",
            Json.Arr
              (List.map
                 (fun (name, dc, dw, rd, (s : Analysis.Races.stats), cov) ->
                   Json.Obj
                     [
                       ("workload", Json.Str name);
                       ("dead_containers", Json.Arr (List.map (fun c -> Json.Str c) dc));
                       ( "dead_writes",
                         Json.Arr
                           (List.map
                              (fun (sid, c) ->
                                Json.Obj
                                  [
                                    ("state", Json.Num (float_of_int sid));
                                    ("container", Json.Str c);
                                  ])
                              dw) );
                       ("reachdef", Json.Arr (List.map (finding_json []) rd));
                       ( "deps",
                         Json.Obj
                           [
                             ("pairs", Json.Num (float_of_int s.Analysis.Races.pairs));
                             ( "exact_disjoint",
                               Json.Num (float_of_int s.Analysis.Races.exact_disjoint) );
                             ( "exact_overlap",
                               Json.Num (float_of_int s.Analysis.Races.exact_overlap) );
                             ("sampled", Json.Num (float_of_int s.Analysis.Races.sampled));
                           ] );
                       ("coverage_notes", Json.Arr (List.map (finding_json []) cov));
                     ])
                 dataflow_rows) );
          ( "audit",
            Json.Arr
              (List.map
                 (fun (pname, xname, site, fs) ->
                   Json.Obj
                     [
                       ("workload", Json.Str pname);
                       ("transformation", Json.Str xname);
                       ("site", Json.Str (Transforms.Xform.site_slug site));
                       ("findings", Json.Arr (List.map (finding_json []) fs));
                     ])
                 audit_rows) );
        ]
    in
    (match out with
    | Some path ->
        let oc = open_out path in
        output_string oc (Json.to_string report);
        output_char oc '\n';
        close_out oc
    | None -> ());
    if json then print_endline (Json.to_string report)
    else begin
      List.iter
        (fun (name, fs) ->
          if fs = [] then Printf.printf "%-20s clean\n" name
          else begin
            Printf.printf "%-20s %d finding(s)\n" name (List.length fs);
            List.iter (fun f -> Format.printf "  %a@." Analysis.Report.pp f) fs
          end)
        oracle_rows;
      List.iter
        (fun (name, dc, dw, rd, (s : Analysis.Races.stats), cov) ->
          if dc <> [] || dw <> [] || rd <> [] || s.Analysis.Races.pairs > 0 || cov <> [] then
            Printf.printf
              "%-20s dataflow: %d dead container(s), %d dead write(s), %d reachdef, deps \
               %d/%d decided, %d coverage note(s)\n"
              name (List.length dc) (List.length dw) (List.length rd)
              (s.Analysis.Races.exact_disjoint + s.Analysis.Races.exact_overlap)
              s.Analysis.Races.pairs (List.length cov))
        dataflow_rows;
      Printf.printf "change-set audit: %d instance(s), %d under-declared\n" !audit_instances
        (List.length audit_rows);
      List.iter
        (fun (pname, xname, site, fs) ->
          Format.printf "  %s :: %s @@ %a@." pname xname Transforms.Xform.pp_site site;
          List.iter (fun f -> Format.printf "    %a@." Analysis.Report.pp f) fs)
        audit_rows;
      Printf.printf "lint: %d error(s), %d warning(s)\n" errors warnings
    end;
    if errors > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Static health check of the whole suite: the dataflow oracle over every workload plus \
          the change-set audit over every transformation instance. Exits non-zero only on \
          definite (error-severity) findings.")
    Term.(const run $ workloads_arg $ json_arg $ out_arg $ defines_arg)

let certify_cmd =
  let run w x defines =
    let g = find_workload w in
    let xform = find_xform x in
    let symbols =
      let base = if defines = [] then default_symbols_for (Sdfg.Graph.name g) else defines in
      List.filter (fun (s, _) -> List.mem s (Sdfg.Graph.all_free_syms g)) base
    in
    let sites = xform.find g in
    if sites = [] then begin
      print_endline "no application sites found";
      exit 1
    end;
    let equivalent = ref 0 and refuted = ref 0 and unknown = ref 0 in
    List.iter
      (fun site ->
        Format.printf "%s @@ %a: " xform.Transforms.Xform.name Transforms.Xform.pp_site site;
        match Analysis.Equiv.certify ~symbols g xform site with
        | None ->
            incr unknown;
            Format.printf "stale (site no longer applies)@."
        | Some v ->
            (match v with
            | Analysis.Equiv.Equivalent _ -> incr equivalent
            | Analysis.Equiv.Refuted _ -> incr refuted
            | Analysis.Equiv.Unknown _ -> incr unknown);
            Format.printf "%a@." Analysis.Equiv.pp_verdict v)
      sites;
    Printf.printf "%d equivalent, %d refuted, %d unknown of %d site(s)\n" !equivalent !refuted
      !unknown (List.length sites);
    if !refuted > 0 then exit 2 else if !equivalent = List.length sites then exit 0 else exit 1
  in
  Cmd.v
    (Cmd.info "certify"
       ~doc:
         "Symbolic translation validation: prove each instance dataflow-equivalent (exit 0), \
          refute it with a witness valuation (exit 2), or report unknown (exit 1).")
    Term.(const run $ workload_arg $ xform_arg $ defines_arg)

let optimize_cmd =
  let run w trials seed max_size no_min_cut defines correct static =
    let defines = if defines = [] then [ ("N", 8); ("T", 3); ("H", 4); ("R", 3); ("Q", 4); ("P", 3) ] else defines in
    let g = find_workload w in
    let config = mk_config trials seed max_size no_min_cut defines in
    let xforms =
      if correct then Transforms.Registry.all_correct () else Transforms.Registry.as_shipped ()
    in
    let optimized, log = Fuzzyflow.Pipeline.optimize ~config ~static_gate:static g xforms in
    Format.printf "%a" Fuzzyflow.Pipeline.pp_log log;
    match Sdfg.Validate.check optimized with
    | [] -> print_endline "optimized program valid"
    | e :: _ -> Format.printf "optimized program INVALID: %a@." Sdfg.Validate.pp_error e
  in
  let correct_arg =
    Cmdliner.Arg.(value & flag & info [ "correct" ] ~doc:"Use the fixed transformation set.")
  in
  let static_arg =
    Cmdliner.Arg.(
      value & flag
      & info [ "static" ]
          ~doc:"Pre-gate every instance with the static dataflow oracle before fuzzing.")
  in
  Cmd.v
    (Cmd.info "optimize" ~doc:"Guarded optimization: test each instance, apply only passing ones.")
    Term.(
      const run $ workload_arg $ trials_arg $ seed_arg $ max_size_arg $ no_min_cut_arg
      $ defines_arg $ correct_arg $ static_arg)

let localize_cmd =
  let run w x trials seed max_size no_min_cut defines =
    let g = find_workload w in
    let xform = find_xform x in
    let config = mk_config trials seed max_size no_min_cut defines in
    List.iter
      (fun site ->
        let r = Fuzzyflow.Difftest.test_instance ~config g xform site in
        match r.verdict with
        | Fuzzyflow.Difftest.Pass -> ()
        | Fuzzyflow.Difftest.Fail _ -> (
            Format.printf "%a@." Fuzzyflow.Difftest.pp_report r;
            match Fuzzyflow.Localize.of_report ~config ~original:g ~xform r with
            | Some ds when ds <> [] ->
                List.iteri
                  (fun i d ->
                    if i < 5 then
                      Format.printf "  %s %a@."
                        (if i = 0 then "first divergence:" else "then:            ")
                        Fuzzyflow.Localize.pp_divergence d)
                  ds
            | _ -> print_endline "  (no localization available)"))
      (xform.find g)
  in
  Cmd.v
    (Cmd.info "localize"
       ~doc:"Test a transformation and point at where along the dataflow values diverge.")
    Term.(
      const run $ workload_arg $ xform_arg $ trials_arg $ seed_arg $ max_size_arg $ no_min_cut_arg
      $ defines_arg)

let selfcheck_cmd =
  let j_arg =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Worker processes. The report is byte-identical for any $(docv).")
  in
  let deadline_arg =
    Arg.(
      value & opt float 60.
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:
            "Wall-clock budget per probe. Killed probes are retried with doubled deadlines, \
             then quarantined.")
  in
  let trials_arg =
    Arg.(
      value & opt int 10
      & info [ "trials" ] ~docv:"N" ~doc:"Fuzzing trials per differential-test probe.")
  in
  let seed_arg =
    Arg.(value & opt int 42 & info [ "s"; "seed" ] ~docv:"SEED" ~doc:"Campaign seed.")
  in
  let floor_arg =
    Arg.(
      value & opt float 0.95
      & info [ "floor" ] ~docv:"RATE"
          ~doc:"Minimum detection rate over interpreter + transform faults; below it, exit 1.")
  in
  let require_semantics_arg =
    Arg.(
      value & flag
      & info [ "require-semantics" ]
          ~doc:"Additionally require every Semantics-class injection to be detected.")
  in
  let require_deps_arg =
    Arg.(
      value & flag
      & info [ "require-deps" ]
          ~doc:
            "Additionally require every subset-shift and wrong-stride mutation to be caught \
             by the exact dependence tier with a witness that reproduces dynamically as a \
             directed fuzz seed.")
  in
  let report_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "report" ] ~docv:"FILE" ~doc:"Write the deterministic JSONL report to $(docv).")
  in
  let level_arg =
    Arg.(
      value
      & opt (some (enum [ ("interp", Faultlab.Plan.L_interp); ("transform", Faultlab.Plan.L_transform); ("mpi", Faultlab.Plan.L_mpi); ("net", Faultlab.Plan.L_net) ])) None
      & info [ "level" ] ~docv:"LEVEL"
          ~doc:"Restrict the catalog to one injection level: interp, transform, mpi or net.")
  in
  let progress_arg =
    Arg.(value & flag & info [ "progress" ] ~doc:"Live per-spec telemetry on stderr.")
  in
  let generated_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "generated" ] ~docv:"N"
          ~doc:
            "Extend the catalog with transform mutations over the first $(docv) admitted \
             generated programs of $(b,--style) (default mixed) at the campaign seed — the \
             generator as a selfcheck subject.")
  in
  let run j deadline trials seed floor require_semantics require_deps report_path level
      progress generated_n styles =
    let generated =
      match generated_n with
      | None -> None
      | Some n -> (
          match styles with
          | [] -> Some ("mixed", n)
          | [ s ] when Gen.Styles.by_name s <> None -> Some (s, n)
          | [ s ] ->
              Printf.eprintf "unknown style %s (one of: %s)\n" s
                (String.concat ", " Gen.Styles.names);
              exit 2
          | _ ->
              prerr_endline "selfcheck: --generated takes a single --style";
              exit 2)
    in
    let r =
      Faultlab.Selfcheck.run ~j ~deadline_s:deadline ~trials ?level ?generated ~progress ~seed ()
    in
    print_string (Faultlab.Selfcheck.render r);
    (match report_path with
    | Some path ->
        let oc = open_out path in
        output_string oc (Faultlab.Selfcheck.to_jsonl r);
        close_out oc;
        Printf.printf "report written to %s\n" path
    | None -> ());
    if not (Faultlab.Selfcheck.passed ~floor ~require_semantics ~require_deps r) then exit 1
  in
  Cmd.v
    (Cmd.info "selfcheck"
       ~doc:
         "Inject known faults at every level and verify the oracles catch them (the \
          fault-injection lab).")
    Term.(
      const run $ j_arg $ deadline_arg $ trials_arg $ seed_arg $ floor_arg $ require_semantics_arg
      $ require_deps_arg $ report_arg $ level_arg $ progress_arg $ generated_arg $ style_arg)

(* ---------------- distributed campaign service ---------------- *)

let port_arg ?(default = 0) names doc =
  Arg.(value & opt int default & info names ~docv:"PORT" ~doc)

let worker_cmd =
  let run port once =
    let sock, actual = Engine.Supervisor.listen_on ~port () in
    Printf.printf "worker: listening on 127.0.0.1:%d\n%!" actual;
    Engine.Supervisor.serve_worker ~once ~catalog:(xform_catalog ()) sock
  in
  let once_arg =
    Arg.(value & flag & info [ "once" ] ~doc:"Exit after the first connection closes.")
  in
  Cmd.v
    (Cmd.info "worker"
       ~doc:
         "Run a campaign worker: accept assignments from a dispatcher, execute each in a \
          supervised fork exactly as the local pool would, and reply with the verdict.")
    Term.(const run $ port_arg [ "port" ] "Listen on $(docv) (0 picks an ephemeral port)." $ once_arg)

let serve_cmd =
  let workers_arg =
    Arg.(
      value & opt_all string []
      & info [ "worker" ] ~docv:"HOST:PORT" ~doc:"Dispatch to this worker (repeatable).")
  in
  let journal_dir_arg =
    Arg.(
      value & opt string "_service"
      & info [ "journal-dir" ] ~docv:"DIR" ~doc:"Campaign journals land here.")
  in
  let corpus_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "corpus" ] ~docv:"DIR" ~doc:"Persist failing test cases under $(docv).")
  in
  let j_arg =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N" ~doc:"Local pool width for fallback and worker-less runs.")
  in
  let deadline_arg =
    Arg.(
      value & opt float 60.
      & info [ "deadline" ] ~docv:"SECONDS" ~doc:"Wall-clock budget per instance.")
  in
  let max_campaigns_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-campaigns" ] ~docv:"N" ~doc:"Exit after $(docv) submissions (smoke tests).")
  in
  let run port http workers journal_dir corpus j deadline max_campaigns =
    let workers =
      List.map
        (fun s ->
          try Engine.Supervisor.endpoint_of_string s
          with Invalid_argument m ->
            prerr_endline ("serve: " ^ m);
            exit 2)
        workers
    in
    let config =
      {
        Engine.Service.default_config with
        port;
        http_port = (if http < 0 then None else Some http);
        workers;
        journal_dir;
        corpus_dir = corpus;
        j;
        deadline_s = deadline;
        max_campaigns;
      }
    in
    Engine.Service.serve ~config
      ~resolve:(fun name ->
        match List.assoc_opt name (workloads ()) with
        | Some g -> Some g
        | None -> (
            try Some (Faultlab.Plan.workload_by_name name) with _ -> None))
      ~catalog_of:(fun correct ->
        if correct then Transforms.Registry.all_correct () else Transforms.Registry.as_shipped ())
      ()
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the campaign daemon: accept submissions, dispatch instances to remote workers \
          with crash-tolerant supervision, stream journals back, and expose live telemetry \
          over HTTP.")
    Term.(
      const run
      $ port_arg ~default:7400 [ "port" ] "Control port for submissions (0: ephemeral)."
      $ port_arg ~default:(-1) [ "http" ] "HTTP telemetry port (0: ephemeral; omit to disable)."
      $ workers_arg $ journal_dir_arg $ corpus_arg $ j_arg $ deadline_arg $ max_campaigns_arg)

let submit_cmd =
  let host_arg =
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST" ~doc:"Service host.")
  in
  let correct_arg =
    Arg.(value & flag & info [ "correct" ] ~doc:"Use the fixed transformation set.")
  in
  let certify_arg =
    Arg.(value & flag & info [ "certify" ] ~doc:"Skip fuzzing of proven-equivalent instances.")
  in
  let static_arg =
    Arg.(value & flag & info [ "static" ] ~doc:"Run the static evidence channel.")
  in
  let limit_per_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "limit-per" ] ~docv:"N" ~doc:"At most $(docv) sites per (workload, transformation).")
  in
  let quiet_arg =
    Arg.(value & flag & info [ "quiet" ] ~doc:"Do not echo streamed journal lines.")
  in
  let shutdown_arg =
    Arg.(value & flag & info [ "shutdown" ] ~doc:"Ask the service to exit instead of submitting.")
  in
  let run host port ws correct certify static trials seed max_size defines limit_per quiet
      shutdown batch =
    if shutdown then begin
      if Engine.Service.shutdown ~host ~port then print_endline "service: shutdown acknowledged"
      else begin
        prerr_endline "submit: service did not acknowledge shutdown";
        exit 1
      end
    end
    else begin
      let ws = if ws = [] then List.map fst (workloads ()) else ws in
      let defines = if defines = [] then [ ("N", 8); ("T", 3) ] else defines in
      let sub =
        {
          Engine.Wire.s_workloads = ws;
          s_correct = correct;
          s_trials = trials;
          s_seed = seed;
          s_max_size = max_size;
          s_defines = defines;
          s_limit_per = limit_per;
          s_static_gate = static;
          s_certify_gate = certify;
          s_batch = resolve_batch ~trials batch;
        }
      in
      let on_line l = if not quiet then print_endline l in
      match Engine.Service.submit ~host ~port ~on_line sub with
      | Ok (Some table) -> print_string table
      | Ok None -> ()
      | Error detail ->
          prerr_endline ("submit: " ^ detail);
          exit 1
    end
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:
         "Submit a campaign to a running service and stream its journal; print the Table 2 \
          summary when it completes.")
    Term.(
      const run $ host_arg
      $ port_arg ~default:7400 [ "port" ] "Service control port."
      $ workloads_arg $ correct_arg $ certify_arg $ static_arg $ trials_arg $ seed_arg
      $ max_size_arg $ defines_arg $ limit_per_arg $ quiet_arg $ shutdown_arg $ batch_arg)

let dot_cmd =
  let run w =
    let g = find_workload w in
    print_string (Sdfg.Dot.to_dot g)
  in
  Cmd.v (Cmd.info "dot" ~doc:"Print a workload's dataflow graph as graphviz.")
    Term.(const run $ workload_arg)

let () =
  let info = Cmd.info "fuzzyflow" ~version:"1.0.0" ~doc:"Localized optimization testing with dataflow cutouts." in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd;
            test_cmd;
            generate_cmd;
            campaign_cmd;
            corpus_cmd;
            cutout_cmd;
            analyze_cmd;
            lint_cmd;
            certify_cmd;
            optimize_cmd;
            localize_cmd;
            selfcheck_cmd;
            serve_cmd;
            worker_cmd;
            submit_cmd;
            dot_cmd;
          ]))
