(* End-to-end smoke test: a matrix-chain fragment (Fig. 2 of the paper),
   tiled with the off-by-one bug, must be caught by the FuzzyFlow pipeline. *)

open Sdfg

let build_matmul_chain () =
  let g = Graph.create "chain" in
  let n = Symbolic.Expr.sym "N" in
  Graph.add_symbol g "N";
  List.iter (fun c -> Graph.add_array g c Dtype.F64 [ n; n ]) [ "A"; "B"; "C"; "D"; "R" ];
  Graph.add_array g ~transient:true "U" Dtype.F64 [ n; n ];
  Graph.add_array g ~transient:true "V" Dtype.F64 [ n; n ];
  let sid = Graph.add_state g "main" in
  let st = Graph.state g sid in
  (* U = A @ B as a WCR map *)
  let mm label x y out =
    Builder.Build.mapped_tasklet g st ~label
      ~map:[ ("i", "0:N-1"); ("j", "0:N-1"); ("k", "0:N-1") ]
      ~inputs:[ ("a", Builder.Build.mem x "i, k"); ("b", Builder.Build.mem y "k, j") ]
      ~code:"o = a * b"
      ~outputs:[ ("o", Builder.Build.mem ~wcr:Memlet.Wcr_sum out "i, j") ]
      ()
  in
  let m1 = mm "mm1" "A" "B" "U" in
  let m2 =
    Builder.Build.mapped_tasklet g st ~label:"mm2"
      ~map:[ ("i", "0:N-1"); ("j", "0:N-1"); ("k", "0:N-1") ]
      ~inputs:[ ("a", Builder.Build.mem "U" "i, k"); ("b", Builder.Build.mem "C" "k, j") ]
      ~code:"o = a * b"
      ~outputs:[ ("o", Builder.Build.mem ~wcr:Memlet.Wcr_sum "V" "i, j") ]
      ~input_nodes:[ ("U", List.assoc "U" m1.out_access) ]
      ()
  in
  let m3 =
    Builder.Build.mapped_tasklet g st ~label:"mm3"
      ~map:[ ("i", "0:N-1"); ("j", "0:N-1"); ("k", "0:N-1") ]
      ~inputs:[ ("a", Builder.Build.mem "V" "i, k"); ("b", Builder.Build.mem "D" "k, j") ]
      ~code:"o = a * b"
      ~outputs:[ ("o", Builder.Build.mem ~wcr:Memlet.Wcr_sum "R" "i, j") ]
      ~input_nodes:[ ("V", List.assoc "V" m2.out_access) ]
      ()
  in
  ignore m3;
  (g, sid, m2.entry)

let () =
  let g, sid, mm2_entry = build_matmul_chain () in
  (match Validate.check g with
  | [] -> print_endline "validate: ok"
  | errs ->
      List.iter (fun e -> Format.printf "validate error: %a@." Validate.pp_error e) errs;
      exit 1);
  (* run it *)
  let n = 4 in
  let ident = Array.init (n * n) (fun i -> if i / n = i mod n then 1. else 0.) in
  let inputs = [ ("A", ident); ("B", ident); ("C", ident); ("D", ident) ] in
  (match Interp.Exec.run g ~symbols:[ ("N", n) ] ~inputs with
  | Ok o ->
      let r = Interp.Value.buffer o.memory "R" in
      Printf.printf "run: ok, R[0,0]=%g R[0,1]=%g steps=%d\n" r.data.(0) r.data.(1) o.steps
  | Error f ->
      Format.printf "run failed: %a@." Interp.Exec.pp_fault f;
      exit 1);
  (* FuzzyFlow on the buggy tiling of mm2 *)
  let buggy = Transforms.Map_tiling.make ~tile_size:3 Transforms.Map_tiling.Off_by_one in
  let site = Transforms.Xform.dataflow_site ~state:sid ~nodes:[ mm2_entry ] ~descr:"tile mm2" in
  let config =
    { Fuzzyflow.Difftest.default_config with trials = 10; max_size = 8; concretization = [ ("N", 8) ] }
  in
  let report = Fuzzyflow.Difftest.test_instance ~config g buggy site in
  Format.printf "%a@." Fuzzyflow.Difftest.pp_report report;
  Format.printf "cutout: %a@." Fuzzyflow.Cutout.pp report.cutout;
  (match report.min_cut_stats with
  | Some s ->
      Printf.printf "min-cut: %d -> %d elements (extension %d nodes)\n" s.original_elements
        s.minimized_elements (List.length s.extension)
  | None -> ());
  (* the correct tiling must pass *)
  let good = Transforms.Map_tiling.make ~tile_size:3 Transforms.Map_tiling.Correct in
  let report2 = Fuzzyflow.Difftest.test_instance ~config g good site in
  Format.printf "%a@." Fuzzyflow.Difftest.pp_report report2;
  (match (report.verdict, report2.verdict) with
  | Fuzzyflow.Difftest.Fail _, Fuzzyflow.Difftest.Pass -> print_endline "SMOKE OK"
  | _ -> (print_endline "SMOKE FAILED"; exit 1));
  (* the static oracle agrees without running a single trial: the chain is
     clean as written, the buggy tiling introduces duplicated accumulating
     iterations, the correct tiling introduces nothing *)
  let symbols = [ ("N", 8) ] in
  let baseline = Analysis.Oracle.analyze ~symbols g in
  let delta x = Analysis.Delta.verify ~symbols g x site in
  (match (baseline, delta buggy, delta good) with
  | [], Some (_ :: _ as fs), Some [] ->
      List.iter (fun f -> Format.printf "static: %a@." Analysis.Report.pp f) fs;
      print_endline "STATIC OK"
  | b, d1, d2 ->
      Printf.printf "static oracle mismatch: baseline=%d buggy=%s correct=%s\n"
        (List.length b)
        (match d1 with None -> "stale" | Some fs -> string_of_int (List.length fs))
        (match d2 with None -> "stale" | Some fs -> string_of_int (List.length fs));
      print_endline "SMOKE FAILED";
      exit 1)
